"""Deterministic fault-schedule fuzzer (DESIGN.md §11).

A scenario is a plain-data :class:`ScenarioSpec`: topology knobs
(backups, loss, latency, MTU), a workload (echo request/response or a
one-way ttcp stream), and a fault schedule drawn from the repertoire of
:class:`~repro.faults.FaultPlan`.  A fraction of generated scenarios
instead run over a *small redirector mesh* (2–3 redirectors, 2–4
replicated services, via :mod:`repro.topo`) so the mesh sync protocol
and hierarchical failure aggregation get fuzzed too.  ``run_scenario`` builds the system,
arms the invariant monitors (:mod:`repro.invariants.monitors`), applies
the schedule, and returns the violations plus a protocol-level
fingerprint (client bytes + canonical replica streams) that is stable
across engine changes and ``REPRO_SEED_OFFSET`` values — the fuzzer
derives every seed itself and deliberately ignores that variable.

On a violation, :mod:`repro.invariants.shrink` delta-debugs the fault
schedule and workload down to a minimal reproducer, serialized as JSON
into ``tests/fuzz_corpus/`` and replayable with
``python -m repro fuzz --replay FILE``.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import random
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Optional

from repro.apps.echo import echo_server_factory
from repro.apps.ttcp import TTCP_TCP_OPTIONS, TtcpSender, ttcp_sink_factory
from repro.core import DetectorParams, FtNode, ReplicatedTcpService
from repro.experiments.testbeds import (
    CLIENT_486,
    LINK_BANDWIDTH,
    LINK_QUEUE,
    REDIRECTOR_486,
    SERVER_P120,
    SERVICE_IP,
    FtSystem,
)
from repro.faults import FaultPlan, GrayFaultPlan
from repro.hydranet import HostServer, Redirector, RedirectorDaemon
from repro.netsim import Simulator, Topology
from repro.replication import available_strategies
from repro.sockets import node_for
from repro.topo import MeshScenario, MeshWorkload
from repro.topo import generate as generate_topology

from .monitors import attach_invariants

#: Default location of the committed reproducer corpus.
CORPUS_DIR = Path(__file__).resolve().parents[3] / "tests" / "fuzz_corpus"

SPEC_VERSION = 1

#: OutputLiveness stall bound armed in gray scenarios (seconds — think
#: K·RTT with plenty of headroom for one excision + fail-over round).
GRAY_LIVENESS_BOUND = 8.0

#: Graceful-degradation timeout used by gray scenarios' replicas.
GRAY_DEGRADATION_TIMEOUT = 2.0


@dataclass
class ScenarioSpec:
    """One fuzz scenario: everything needed to replay it exactly."""

    seed: int
    n_backups: int = 1
    n_spares: int = 0
    loss: float = 0.0
    latency: float = 0.0005
    mtu: int = 1500
    workload: dict = field(
        default_factory=lambda: {"kind": "echo", "total_bytes": 40_000, "chunk": 2048}
    )
    duration: float = 30.0
    faults: list = field(default_factory=list)
    #: When set, the scenario runs over a small redirector *mesh*
    #: (:mod:`repro.topo`) instead of the classic single-redirector
    #: testbed: ``{"kind": ..., "params": {...}, "workload": {...}}``.
    #: ``None`` (the default) keeps old corpus files replayable as-is.
    mesh: Optional[dict] = None
    #: Gray-failure mode: the schedule may contain gray ops (slow_host,
    #: asym_loss, corrupt_ack, reorder_ack, lie_progress), replicas run
    #: with graceful degradation enabled, and the OutputLiveness
    #: monitor is armed.  ``False`` (the default) keeps old corpus
    #: files replayable byte-identically.
    gray: bool = False
    #: Replication backend the replicas run (DESIGN.md §15).  The
    #: default keeps old corpus files replayable byte-identically.
    backend: str = "chain"
    version: int = SPEC_VERSION

    def to_json(self) -> dict:
        return asdict(self)

    @classmethod
    def from_json(cls, data: dict) -> "ScenarioSpec":
        known = {f: data[f] for f in cls.__dataclass_fields__ if f in data}
        return cls(**known)


@dataclass
class ScenarioResult:
    spec: ScenarioSpec
    violations: list
    violated_monitors: list
    fingerprint: str
    client_received: int
    stats: dict


# -- scenario generation ----------------------------------------------------


def _drop_overlapping_partitions(faults: list) -> list:
    """Drop partition ops whose window overlaps an earlier partition
    window on the same link direction (generation order):
    :class:`~repro.faults.FaultPlan` rejects such schedules, because
    the earlier window's heal would silently re-raise the channel in
    the middle of the later window.  Runs *after* every RNG draw, so
    pre-existing seeds keep their streams — only the (previously
    silently-miscomposed) overlapping op disappears."""
    taken: dict[str, list[tuple[float, float]]] = {}
    kept = []
    for op in faults:
        kind = op.get("op")
        if kind in ("partition", "partition_oneway"):
            start = op["at"]
            end = (
                float("inf")
                if op.get("duration") is None
                else start + op["duration"]
            )
            directions = (
                (op["direction"],) if kind == "partition_oneway" else ("a_to_b", "b_to_a")
            )
            keys = [f"{op['link']}:{d}" for d in directions]
            if any(
                start < e and s < end
                for key in keys
                for s, e in taken.get(key, [])
            ):
                continue
            for key in keys:
                taken.setdefault(key, []).append((start, end))
        kept.append(op)
    return kept


def _gen_faults(rng: random.Random, n_backups: int, duration: float) -> list:
    """Draw a fault schedule.  Times are absolute (traffic starts at
    t=2.0 after registration).  Weighted towards partitioning the
    primary's link — the schedules that exercise promotion, fencing and
    the split-brain machinery hardest."""
    faults = []
    hosts = [f"hs_{i}" for i in range(1 + n_backups)]
    crashed: set = set()
    n_ops = rng.randint(1, 3)
    for _ in range(n_ops):
        # Transfers complete within a few seconds of traffic start
        # (t=2.0), so faults land early — mid-transfer, where the
        # promotion/fencing/retransmission races live.
        at = round(2.0 + rng.uniform(0.2, 3.0), 3)
        roll = rng.random()
        if roll < 0.30 and n_backups >= 1:
            faults.append(
                {
                    "op": "partition",
                    "link": "hs_0",
                    "at": at,
                    "duration": round(rng.uniform(3.0, 10.0), 3),
                }
            )
        elif roll < 0.45 and n_backups >= 1:
            faults.append(
                {
                    "op": "partition_oneway",
                    "link": "hs_0",
                    # a is the redirector: a_to_b deafens the replica
                    # while it can still transmit — the split-brain case.
                    "direction": rng.choice(["a_to_b", "b_to_a"]),
                    "at": at,
                    "duration": round(rng.uniform(3.0, 10.0), 3),
                }
            )
        elif roll < 0.65:
            victims = [h for h in hosts if h not in crashed]
            if not victims:
                continue
            victim = rng.choice(victims)
            crashed.add(victim)
            if rng.random() < 0.5:
                faults.append({"op": "crash", "target": victim, "at": at})
            else:
                d = round(rng.uniform(3.0, 10.0), 3)
                faults.append(
                    {"op": "crash_for", "target": victim, "at": at, "duration": d}
                )
                if rng.random() < 0.4:
                    faults.append(
                        {
                            "op": "recommission",
                            "target": victim,
                            "at": round(at + d + rng.uniform(0.5, 2.0), 3),
                        }
                    )
        elif roll < 0.80:
            link = rng.choice(["client"] + hosts)
            faults.append(
                {
                    "op": "loss_burst",
                    "link": link,
                    "at": at,
                    "duration": round(rng.uniform(0.5, 3.0), 3),
                    "loss_rate": round(rng.uniform(0.3, 1.0), 3),
                }
            )
        elif roll < 0.92 and n_backups >= 1:
            link = rng.choice([f"hs_{i}" for i in range(1, 1 + n_backups)])
            faults.append(
                {
                    "op": "partition",
                    "link": link,
                    "at": at,
                    "duration": round(rng.uniform(1.0, 6.0), 3),
                }
            )
        else:
            victims = [h for h in hosts if h not in crashed]
            if not victims:
                continue
            victim = rng.choice(victims)
            crashed.add(victim)
            faults.append(
                {
                    "op": "crash_cycle",
                    "target": victim,
                    "start": at,
                    "period": round(rng.uniform(4.0, 8.0), 3),
                    "downtime": round(rng.uniform(1.0, 3.0), 3),
                    "count": rng.randint(2, 3),
                }
            )
    faults = _drop_overlapping_partitions(faults)
    faults.sort(key=lambda f: f.get("at", f.get("start", 0.0)))
    return faults


def _gen_gray_faults(rng: random.Random, n_backups: int, duration: float) -> list:
    """Draw 1-2 gray-failure ops (DESIGN.md §14).  Weighted towards
    ``lie_progress`` so a ``--mutate progress_check`` sweep meets a liar
    within a few dozen seeds.  One op per (reservation-group, target) —
    :class:`~repro.faults.GrayFaultPlan` rejects overlapping windows on
    the same target, and the generator must only emit valid schedules."""
    faults = []
    backups = [f"hs_{i}" for i in range(1, 1 + n_backups)]
    used: set = set()
    for _ in range(rng.randint(1, 2)):
        # Earlier than the classic schedule: an unfaulted transfer is
        # done within a second of traffic start (t=2.0), and a gray op
        # only bites while traffic is in flight.
        at = round(2.2 + rng.uniform(0.0, 1.2), 3)
        roll = rng.random()
        if roll < 0.40:
            target = rng.choice(backups)
            group = ("lie-progress", target)
            if group in used:
                continue
            used.add(group)
            faults.append(
                {
                    "op": "lie_progress",
                    "target": target,
                    "at": at,
                    # Long enough that some windows exceed the liveness
                    # bound: with excision disabled (mutation) the stall
                    # then trips OutputLiveness; with it enabled the
                    # liar is cut out within a couple of seconds.
                    "duration": round(rng.uniform(4.0, 12.0), 3),
                    "inflate": rng.choice([500_000, 1_000_000, 2_000_000]),
                }
            )
        elif roll < 0.60:
            target = rng.choice(["hs_0"] + backups)
            group = ("slow-host", target)
            if group in used:
                continue
            used.add(group)
            faults.append(
                {
                    "op": "slow_host",
                    "target": target,
                    "at": at,
                    "duration": round(rng.uniform(3.0, 10.0), 3),
                    "factor": rng.choice([5.0, 10.0, 20.0]),
                }
            )
        elif roll < 0.75:
            link = rng.choice(["client"] + backups)
            direction = rng.choice(["a_to_b", "b_to_a"])
            group = ("asym-loss", f"{link}:{direction}")
            if group in used:
                continue
            used.add(group)
            faults.append(
                {
                    "op": "asym_loss",
                    "link": link,
                    "direction": direction,
                    "at": at,
                    "duration": round(rng.uniform(2.0, 6.0), 3),
                    "loss_rate": round(rng.uniform(0.3, 0.9), 3),
                }
            )
        else:
            # Ack traffic of backup hs_i leaves on its own uplink
            # (b_to_a: host server -> redirector), so tap there.
            # corrupt and reorder share the single tap slot per channel.
            link = rng.choice(backups)
            group = ("ack-tap", f"{link}:b_to_a")
            if group in used:
                continue
            used.add(group)
            op = {
                "op": rng.choice(["corrupt_ack", "reorder_ack"]),
                "link": link,
                "direction": "b_to_a",
                "at": at,
                "duration": round(rng.uniform(2.0, 6.0), 3),
                "rate": round(rng.uniform(0.3, 0.8), 3),
            }
            if op["op"] == "reorder_ack":
                op["delay"] = round(rng.uniform(0.02, 0.2), 3)
            faults.append(op)
    faults.sort(key=lambda f: f.get("at", f.get("start", 0.0)))
    return faults


def _gen_mesh_faults(rng: random.Random, spokes: int, duration: float) -> list:
    """Fault schedule for a small hub-and-spoke mesh.  Targets are the
    mesh host names; ``partition``/``loss_burst`` links name the host
    whose uplink (to its adjacent redirector) is hit — partitioning a
    ``spoke`` therefore severs a whole rack from the hub."""
    servers = [f"srv_s{s}n{n}" for s in range(spokes) for n in range(2)]
    rack_edges = [f"spoke{s}" for s in range(spokes)]
    faults = []
    crashed: set = set()
    for _ in range(rng.randint(1, 2)):
        at = round(2.5 + rng.uniform(0.2, 4.0), 3)
        roll = rng.random()
        if roll < 0.40:
            victims = [s for s in servers if s not in crashed]
            if not victims:
                continue
            victim = rng.choice(victims)
            crashed.add(victim)
            if rng.random() < 0.5:
                faults.append({"op": "crash", "target": victim, "at": at})
            else:
                faults.append(
                    {
                        "op": "crash_for",
                        "target": victim,
                        "at": at,
                        "duration": round(rng.uniform(3.0, 8.0), 3),
                    }
                )
        elif roll < 0.70:
            faults.append(
                {
                    "op": "partition",
                    "link": rng.choice(servers),
                    "at": at,
                    "duration": round(rng.uniform(2.0, 6.0), 3),
                }
            )
        elif roll < 0.85:
            faults.append(
                {
                    "op": "partition",
                    "link": rng.choice(rack_edges),
                    "at": at,
                    "duration": round(rng.uniform(1.0, 4.0), 3),
                }
            )
        else:
            faults.append(
                {
                    "op": "loss_burst",
                    "link": rng.choice(servers + rack_edges),
                    "at": at,
                    "duration": round(rng.uniform(0.5, 2.5), 3),
                    "loss_rate": round(rng.uniform(0.3, 0.9), 3),
                }
            )
    faults = _drop_overlapping_partitions(faults)
    faults.sort(key=lambda f: f.get("at", f.get("start", 0.0)))
    return faults


def _generate_mesh_spec(scenario_seed: int, rng: random.Random) -> ScenarioSpec:
    """A small-mesh scenario: 2–3 redirectors (hub + spokes), 2–4
    replicated services, a modest closed-loop client population."""
    spokes = rng.randint(1, 2)
    n_services = rng.randint(2, 4)
    duration = round(rng.uniform(18.0, 35.0), 1)
    mesh = {
        "kind": "hub_and_spoke",
        "params": {
            "spokes": spokes,
            "servers_per_spoke": 2,
            "clients_per_spoke": 1,
            "services": n_services,
            "backups": 1,
        },
        "workload": {
            "connections": rng.choice([6, 10, 14]),
            "requests_per_conn": rng.randint(8, 24),
            "request_size": rng.choice([64, 256]),
            "think_time": 0.05,
            "start_window": 0.5,
        },
    }
    return ScenarioSpec(
        seed=scenario_seed,
        workload={"kind": "mesh"},
        duration=duration,
        faults=_gen_mesh_faults(rng, spokes, duration),
        mesh=mesh,
    )


def generate_spec(
    scenario_seed: int, gray: bool = False, backend: str = "chain"
) -> ScenarioSpec:
    """Derive one scenario deterministically from ``scenario_seed``.
    No environment input: the same seed is the same scenario on every
    machine and under every ``REPRO_SEED_OFFSET``.

    ``gray=True`` layers gray-failure ops on top of the classic
    schedule (and forces a non-mesh topology with at least one backup,
    so there is a chain to lie on).  ``backend`` picks the replication
    strategy the replicas run; mesh scenarios are chain-only, so other
    backends fall through to the classic testbed on mesh seeds.  The
    classic RNG stream is untouched either way — every draw below
    happens identically for every (gray, backend) combination, so old
    seeds keep their scenarios.
    """
    rng = random.Random(scenario_seed * 2654435761 % (2**31))
    mesh_roll = rng.random()
    if not gray and mesh_roll < 0.20 and backend == "chain":
        return _generate_mesh_spec(scenario_seed, rng)
    n_backups = rng.choices([0, 1, 2, 3], weights=[5, 45, 30, 20])[0]
    if (gray or backend != "chain") and n_backups == 0:
        # Star backends and gray schedules both need a backup to gate
        # on; backend/gray are not drawn, so the stream is unchanged.
        n_backups = 1
    if rng.random() < 0.7:
        workload = {
            "kind": "echo",
            "total_bytes": rng.randrange(20_000, 80_000, 4096),
            "chunk": rng.choice([1024, 2048, 4096]),
        }
    else:
        workload = {
            "kind": "ttcp",
            "buflen": rng.choice([256, 1024, 4096]),
            "nbuf": rng.randint(20, 60),
        }
    duration = round(rng.uniform(25.0, 60.0), 1)
    spec = ScenarioSpec(
        seed=scenario_seed,
        n_backups=n_backups,
        loss=round(rng.uniform(0.0, 0.05), 4) if rng.random() < 0.4 else 0.0,
        latency=round(rng.uniform(0.0005, 0.005), 5),
        mtu=rng.choice([1500, 1500, 1500, 576]),
        workload=workload,
        duration=duration,
        faults=_gen_faults(rng, n_backups, duration),
        gray=gray,
        backend=backend,
    )
    if gray:
        # Drawn *after* every classic draw so the classic stream — and
        # therefore every pre-existing seed's scenario — is unchanged.
        spec.faults = sorted(
            spec.faults + _gen_gray_faults(rng, n_backups, duration),
            key=lambda f: f.get("at", f.get("start", 0.0)),
        )
        # Gray faults only bite while traffic is in flight: a one-shot
        # echo blast finishes in well under a second, long before any
        # fault window opens, and a wedged successor would never be
        # *observed* stalling anything.  Replace the workload with a
        # paced stream spanning every fault window (plus headroom for
        # the excision + fail-over round the defenses are allowed).
        last_fault_end = max(
            (f.get("at", f.get("start", 0.0)) + f.get("duration", 0.0))
            for f in spec.faults
        )
        spec.workload = {
            "kind": "paced_echo",
            "chunk": rng.choice([1024, 2048]),
            "every": rng.choice([0.02, 0.025]),
            "until": round(min(last_fault_end + 4.0, 2.0 + duration - 4.0), 3),
        }
    return spec


# -- scenario execution ------------------------------------------------------


def build_fuzz_system(spec: ScenarioSpec) -> FtSystem:
    """Like :func:`~repro.experiments.testbeds.build_ft_system` but with
    the fuzzer's topology knobs and *without* the ``REPRO_SEED_OFFSET``
    shift — corpus replay must be byte-identical in every environment."""
    echo = spec.workload.get("kind", "echo") == "echo"
    factory = echo_server_factory if echo else ttcp_sink_factory
    port = 7 if echo else 5001
    sim = Simulator(seed=spec.seed)
    topo = Topology(sim)
    link_kw = dict(
        bandwidth_bps=LINK_BANDWIDTH,
        latency=spec.latency,
        queue_capacity=LINK_QUEUE,
        mtu=spec.mtu,
    )
    client = topo.add_host("client", CLIENT_486)
    redirector = Redirector(sim, "redirector", REDIRECTOR_486)
    topo.add(redirector)
    servers = []
    for i in range(1 + spec.n_backups + spec.n_spares):
        hs = HostServer(sim, f"hs_{i}", SERVER_P120)
        topo.add(hs)
        servers.append(hs)
    topo.connect(client, redirector, loss_rate=spec.loss, **link_kw)
    for hs in servers:
        topo.connect(redirector, hs, **link_kw)
    topo.add_external_network(f"{SERVICE_IP}/32", redirector)
    topo.build_routes()
    daemon = RedirectorDaemon(redirector)
    nodes = [FtNode(hs, redirector.ip) for hs in servers]
    spare_nodes = nodes[1 + spec.n_backups :]
    detector = DetectorParams(
        threshold=3,
        cooldown=1.0,
        # Gray scenarios arm graceful degradation so slow-but-alive
        # successors get excised instead of stalling output forever.
        degradation_timeout=GRAY_DEGRADATION_TIMEOUT if spec.gray else None,
    )
    service = ReplicatedTcpService(
        SERVICE_IP,
        port,
        factory,
        detector=detector,
        tcp_options=TTCP_TCP_OPTIONS,
        strategy=spec.backend,
    )
    service.add_primary(nodes[0])
    for node in nodes[1 : 1 + spec.n_backups]:
        service.add_backup(node)
    sim.run(until=2.0)  # registration + chain setup
    client_node = node_for(client, TTCP_TCP_OPTIONS)
    return FtSystem(
        sim,
        topo,
        client,
        client_node,
        redirector,
        daemon,
        servers,
        nodes,
        service,
        SERVICE_IP,
        port,
        spare_nodes,
    )


def _apply_faults(system: FtSystem, spec: ScenarioSpec) -> FaultPlan:
    # GrayFaultPlan is a strict superset of FaultPlan: classic ops
    # behave identically, so one plan class serves both modes.
    plan = GrayFaultPlan(system.sim)
    hosts = {hs.name: hs for hs in system.servers}
    nodes = {node.host_server.name: node for node in system.nodes}

    def link_for(name: str):
        if name == "client":
            return system.topo.find_link("client", "redirector")
        return system.topo.find_link("redirector", name)

    for op in spec.faults:
        kind = op["op"]
        if kind == "crash":
            plan.crash_at(hosts[op["target"]], op["at"])
        elif kind == "crash_for":
            plan.crash_for(hosts[op["target"]], op["at"], op["duration"])
        elif kind == "crash_cycle":
            plan.crash_cycle(
                hosts[op["target"]],
                op["start"],
                op["period"],
                op["downtime"],
                op["count"],
            )
        elif kind == "partition":
            plan.partition_at(link_for(op["link"]), op["at"], op.get("duration"))
        elif kind == "partition_oneway":
            plan.partition_oneway_at(
                link_for(op["link"]), op["direction"], op["at"], op.get("duration")
            )
        elif kind == "loss_burst":
            plan.loss_burst(
                link_for(op["link"]), op["at"], op["duration"], op["loss_rate"]
            )
        elif kind == "slow_host":
            plan.slow_host_at(
                hosts[op["target"]], op["at"], op["duration"], op.get("factor", 10.0)
            )
        elif kind == "asym_loss":
            plan.asymmetric_loss_at(
                link_for(op["link"]),
                op["direction"],
                op["at"],
                op["duration"],
                op["loss_rate"],
            )
        elif kind == "corrupt_ack":
            plan.corrupt_ack_at(
                link_for(op["link"]),
                op["direction"],
                op["at"],
                op["duration"],
                op.get("rate", 0.5),
            )
        elif kind == "reorder_ack":
            plan.reorder_ack_at(
                link_for(op["link"]),
                op["direction"],
                op["at"],
                op["duration"],
                op.get("delay", 0.05),
                op.get("rate", 0.5),
            )
        elif kind == "lie_progress":
            plan.lie_progress_at(
                nodes[op["target"]],
                op["at"],
                op["duration"],
                op.get("inflate", 1_000_000),
            )
        elif kind == "recommission":
            target = op["target"]

            def fire(name=target):
                host = hosts[name]
                if host.crashed:
                    host.recover()
                handle = next(
                    (
                        h
                        for h in system.service.replicas
                        if h.node.host_server.name == name
                    ),
                    None,
                )
                if handle is not None:
                    system.service.recommission(handle)

            system.sim.schedule_at(op["at"], fire)
        else:
            raise ValueError(f"unknown fault op {kind!r}")
    return plan


def _run_mesh_scenario(spec: ScenarioSpec) -> ScenarioResult:
    """Mesh variant of :func:`run_scenario`: compile the small mesh,
    arm the monitors on every redirector, apply the fault schedule, and
    drive the closed-loop client population.  The topology seed ignores
    ``REPRO_SEED_OFFSET`` (``env_offset=False``) — corpus replays must
    be byte-identical in every environment."""
    cfg = spec.mesh or {}
    topo_spec = generate_topology(
        cfg.get("kind", "hub_and_spoke"),
        cfg.get("params"),
        seed=spec.seed * 2654435761 % (2**31),
        env_offset=False,
    )
    workload = MeshWorkload(**dict(cfg.get("workload", {}), deadline=spec.duration))
    scenario = MeshScenario(topo_spec, workload)
    mesh, invset = scenario.mesh, scenario.invariants

    plan = FaultPlan(mesh.sim)
    hosts = {**mesh.host_servers, **mesh.redirectors}

    def link_for(name: str):
        for neighbor in topo_spec.neighbors(name):
            if neighbor != name and neighbor in mesh.redirectors:
                return mesh.topo.find_link(name, neighbor)
        raise ValueError(f"no redirector uplink for mesh host {name!r}")

    for op in spec.faults:
        kind = op["op"]
        if kind == "crash":
            plan.crash_at(hosts[op["target"]], op["at"])
        elif kind == "crash_for":
            plan.crash_for(hosts[op["target"]], op["at"], op["duration"])
        elif kind == "partition":
            plan.partition_at(link_for(op["link"]), op["at"], op.get("duration"))
        elif kind == "loss_burst":
            plan.loss_burst(
                link_for(op["link"]), op["at"], op["duration"], op["loss_rate"]
            )
        else:
            raise ValueError(f"unknown mesh fault op {kind!r}")

    report = scenario.run()
    return ScenarioResult(
        spec=spec,
        violations=list(invset.violations),
        violated_monitors=invset.violated_monitors(),
        # The mesh report fingerprint already covers per-connection
        # results, canonical stream digests, violations and counters.
        fingerprint=report.fingerprint,
        client_received=report.completed,
        stats=dict(invset.stats),
    )


def run_scenario(spec: ScenarioSpec) -> ScenarioResult:
    """Build, arm, fault, and drive one scenario to completion."""
    if spec.mesh:
        return _run_mesh_scenario(spec)
    system = build_fuzz_system(spec)
    invset = attach_invariants(system)
    if spec.gray:
        invset.output_liveness.bound = GRAY_LIVENESS_BOUND
    _apply_faults(system, spec)

    workload = spec.workload
    got = bytearray()
    payload = b""
    paced_sent = bytearray()
    kind = workload.get("kind", "echo")
    if kind == "echo":
        total = workload["total_bytes"]
        chunk = workload.get("chunk", 2048)
        payload = bytes(i % 251 for i in range(total))
        conn = system.client_node.connect(system.service_ip, system.port)
        sent = {"n": 0}

        def pump():
            while sent["n"] < total:
                n = conn.send(payload[sent["n"] : sent["n"] + chunk])
                sent["n"] += n
                if n == 0:
                    return

        conn.on_established = pump
        conn.on_send_space = pump
        conn.on_data = got.extend
    elif kind == "paced_echo":
        # Gray-failure workload: a steady stream for the whole fault
        # horizon, so a wedged/lying successor has live output to
        # stall.  The payload is whatever the socket accepted — the
        # prefix check below runs against it after the horizon.
        chunk = workload.get("chunk", 2048)
        every = workload.get("every", 0.025)
        until = workload.get("until", 2.0 + spec.duration)
        conn = system.client_node.connect(system.service_ip, system.port)
        beat = {"n": 0}

        def pace():
            if system.sim.now >= until:
                return
            data = bytes([beat["n"] % 251]) * chunk
            accepted = conn.send(data)
            paced_sent.extend(data[:accepted])
            beat["n"] += 1
            system.sim.schedule(every, pace)

        conn.on_data = got.extend
        system.sim.schedule_at(2.5, pace)
    else:
        sender = TtcpSender(
            system.client_node,
            system.service_ip,
            system.port,
            buflen=workload.get("buflen", 1024),
            nbuf=workload.get("nbuf", 40),
        )
        sender.start()

    system.sim.run(until=2.0 + spec.duration)

    if paced_sent:
        payload = bytes(paced_sent)
    # Safety, not liveness: with every replica dead the client stalls —
    # fine — but the bytes it *did* get must be the true echo prefix.
    if payload and bytes(got) != payload[: len(got)]:
        invset.report(
            "stream-integrity",
            f"client received {len(got)} bytes that are not a prefix of "
            "the echoed payload",
        )

    fingerprint = hashlib.sha256()
    fingerprint.update(bytes(got))
    streams = invset.stream_integrity.digest()
    fingerprint.update(
        json.dumps(
            {
                "client_len": len(got),
                "streams": streams,
                "violations": invset.violated_monitors(),
            },
            sort_keys=True,
        ).encode()
    )
    return ScenarioResult(
        spec=spec,
        violations=list(invset.violations),
        violated_monitors=invset.violated_monitors(),
        fingerprint=fingerprint.hexdigest(),
        client_received=len(got),
        stats=dict(invset.stats),
    )


# -- protocol mutations (for the mutation check and corpus triage) -----------


@contextmanager
def _mutate_deposit_gate():
    """Disable the deposit gate: replicas deposit without waiting for
    the successor's acknowledgement — the Atomicity monitors must fire."""
    from repro.core.ft_tcp import FtConnectionState

    original = FtConnectionState.deposit_ceiling
    FtConnectionState.deposit_ceiling = lambda self: None
    try:
        yield
    finally:
        FtConnectionState.deposit_ceiling = original


@contextmanager
def _mutate_output_gate():
    """Disable the output gate: the primary sends response bytes before
    the successor reported matching sequence numbers."""
    from repro.core.ft_tcp import FtConnectionState

    original = FtConnectionState.transmit_ceiling
    FtConnectionState.transmit_ceiling = lambda self: None
    try:
        yield
    finally:
        FtConnectionState.transmit_ceiling = original


@contextmanager
def _mutate_fence():
    """Disable the redirector's epoch fence: a partitioned ex-primary's
    stale segments sail through towards the client — the SinglePrimary
    monitor's past-the-fence check must fire."""
    original = Redirector._fence_hook
    Redirector._fence_hook = lambda self, packet, nic: False
    try:
        yield
    finally:
        Redirector._fence_hook = original


@contextmanager
def _mutate_progress_check():
    """Disable progress-report plausibility validation: a lying backup's
    inflated watermarks are applied verbatim — ProgressTruthfulness
    (and, downstream, the gate monitors) must fire under ``--gray``."""
    from repro.core.ft_tcp import FtConnectionState

    original = FtConnectionState.validate_progress
    FtConnectionState.validate_progress = False
    try:
        yield
    finally:
        FtConnectionState.validate_progress = original


@contextmanager
def _mutate_ack_checksum():
    """Disable ack-channel checksum validation: corrupted-in-flight
    messages reach the watermark logic — ProgressTruthfulness must
    notice the impossible claims under ``--gray``."""
    from repro.core.ack_channel import AckChannelEndpoint

    original = AckChannelEndpoint.validate_checksums
    AckChannelEndpoint.validate_checksums = False
    try:
        yield
    finally:
        AckChannelEndpoint.validate_checksums = original


@contextmanager
def _mutate_excision():
    """Disable the gray-failure excision pathway — both degraded-
    successor reporting and lie-evidence reporting.  A successor whose
    (rejected) reports keep it looking alive then stalls primary output
    indefinitely, because the classic quiet-based check never sees
    silence — OutputLiveness must fire under ``--gray``."""
    from repro.core.ft_tcp import FtPort

    degradation = FtPort._degradation_check
    lie_evidence = FtPort._note_lie_evidence
    FtPort._degradation_check = lambda self, now, quiet: None
    FtPort._note_lie_evidence = lambda self, state, suspect=None: None
    try:
        yield
    finally:
        FtPort._degradation_check = degradation
        FtPort._note_lie_evidence = lie_evidence


@contextmanager
def _no_mutation():
    yield


MUTATIONS = {
    None: _no_mutation,
    "deposit_gate": _mutate_deposit_gate,
    "output_gate": _mutate_output_gate,
    "fence": _mutate_fence,
    "progress_check": _mutate_progress_check,
    "ack_checksum": _mutate_ack_checksum,
    "excision": _mutate_excision,
}


def run_with_mutation(spec: ScenarioSpec, mutation: Optional[str]) -> ScenarioResult:
    with MUTATIONS[mutation]():
        return run_scenario(spec)


# -- pool worker entry points -------------------------------------------------
#
# Workers receive *plain data* — an integer seed or a spec's JSON dict —
# and derive everything else themselves.  In particular the scenario is
# regenerated from the integer seed *inside* the worker, so no parent-
# process RNG state (or any other inherited mutable state) can leak
# into what a forked worker simulates: an in-process run and a pooled
# run of the same seed are byte-identical by construction.


class _ResultSummary:
    """Picklable, attribute-compatible subset of :class:`ScenarioResult`
    (what the CLI and :func:`save_reproducer` actually consume)."""

    __slots__ = ("violated_monitors", "violations", "fingerprint", "client_received")

    def __init__(self, violated_monitors, violations, fingerprint, client_received):
        self.violated_monitors = violated_monitors
        self.violations = violations
        self.fingerprint = fingerprint
        self.client_received = client_received

    @classmethod
    def from_result(cls, result: ScenarioResult) -> "_ResultSummary":
        return cls(
            violated_monitors=list(result.violated_monitors),
            violations=[str(v) for v in result.violations],
            fingerprint=result.fingerprint,
            client_received=result.client_received,
        )

    @classmethod
    def from_dict(cls, data: dict) -> "_ResultSummary":
        return cls(**data)

    def to_dict(self) -> dict:
        return {slot: getattr(self, slot) for slot in self.__slots__}


def scenario_task(
    scenario_seed: int,
    mutation: Optional[str] = None,
    gray: bool = False,
    backend: str = "chain",
) -> dict:
    """Pool task: derive the scenario purely from its integer seed (in
    the worker) and run it; returns a JSON-able summary."""
    spec = generate_spec(scenario_seed, gray=gray, backend=backend)
    return _ResultSummary.from_result(run_with_mutation(spec, mutation)).to_dict()


def spec_task(spec_data: dict, mutation: Optional[str] = None) -> dict:
    """Pool task for non-seed-derivable specs (shrink candidates,
    corpus replays): the full spec travels as plain JSON."""
    spec = ScenarioSpec.from_json(spec_data)
    return _ResultSummary.from_result(run_with_mutation(spec, mutation)).to_dict()


# -- corpus files -------------------------------------------------------------


def save_reproducer(
    path: Path,
    spec: ScenarioSpec,
    mutation: Optional[str],
    mutated_result: ScenarioResult,
    clean_result: ScenarioResult,
) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(
            {
                "spec": spec.to_json(),
                "found_with_mutation": mutation,
                "violations_under_mutation": mutated_result.violated_monitors,
                "mutated_fingerprint": mutated_result.fingerprint,
                "clean_fingerprint": clean_result.fingerprint,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )


def load_reproducer(path: Path) -> dict:
    data = json.loads(Path(path).read_text())
    data["spec"] = ScenarioSpec.from_json(data["spec"])
    return data


# -- CLI ----------------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro fuzz",
        description="Fuzz HydraNet-FT fault schedules with invariant "
        "monitors armed; shrink and save reproducers on violation.",
    )
    parser.add_argument("--runs", type=int, default=50)
    parser.add_argument("--seed", type=int, default=0, help="base scenario seed")
    parser.add_argument("--replay", type=Path, help="replay one corpus JSON file")
    parser.add_argument(
        "--mutate",
        choices=sorted(k for k in MUTATIONS if k),
        help="run with a protocol gate disabled (mutation check / triage)",
    )
    parser.add_argument(
        "--gray",
        action="store_true",
        help="layer gray-failure ops (slow/asymmetric/corrupt/lying "
        "replicas) onto every generated scenario",
    )
    parser.add_argument(
        "--backend",
        choices=sorted(available_strategies()) + ["all"],
        default="chain",
        help="replication backend the replicas run (DESIGN.md §15); "
        "'all' fuzzes every registered backend on every seed",
    )
    parser.add_argument(
        "--out", type=Path, default=CORPUS_DIR, help="reproducer output directory"
    )
    parser.add_argument(
        "--shrink-budget", type=int, default=200, help="max shrink candidate runs"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the scenario batch (default 1 = in-process)",
    )
    parser.add_argument(
        "--task-timeout",
        type=float,
        default=300.0,
        metavar="SECONDS",
        help="per-scenario timeout when --jobs > 1 (default 300)",
    )
    parser.add_argument(
        "--cache",
        action="store_true",
        help="memoize scenario results on disk (source change invalidates)",
    )
    parser.add_argument(
        "--cache-dir", type=Path, default=None, help="result-cache directory"
    )
    args = parser.parse_args(argv)

    if args.replay is not None:
        entry = load_reproducer(args.replay)
        result = run_with_mutation(entry["spec"], args.mutate)
        print(f"replay {args.replay.name}: fingerprint {result.fingerprint[:16]}…")
        for violation in result.violations:
            print(f"  {violation}")
        if args.mutate is None:
            expected = entry.get("clean_fingerprint")
            if result.violations:
                print("FAIL: violations on unmutated code")
                return 2
            if expected and result.fingerprint != expected:
                print(f"FAIL: fingerprint drifted (expected {expected[:16]}…)")
                return 3
            print("OK: clean, fingerprint matches")
        else:
            expected = entry.get("mutated_fingerprint")
            if expected and result.fingerprint != expected:
                print(f"FAIL: fingerprint drifted (expected {expected[:16]}…)")
                return 3
            print(f"violated: {result.violated_monitors or 'nothing'}")
        return 0

    from repro.runtime import DeterministicMerger, ResultCache, ScenarioPool, Task
    from repro.runtime import task_fingerprint

    from .shrink import shrink_spec

    cache = ResultCache(root=args.cache_dir) if args.cache else None

    # Phase 1 — the seed batch, fanned out over the pool.  Each task
    # carries only its integer seed (plus the backend name); the worker
    # regenerates the spec from them (see ``scenario_task``).  The specs
    # generated here in the parent are used purely for the progress line
    # and the cost hint.  Chain tasks keep their historic ``seed{n}``
    # keys so cached results survive the multi-backend CLI.
    backends = (
        sorted(available_strategies()) if args.backend == "all" else [args.backend]
    )

    def task_key(seed: int, backend: str) -> str:
        return f"seed{seed}" if backend == "chain" else f"seed{seed}.{backend}"

    seeds = [args.seed + i for i in range(args.runs)]
    parent_specs = {}
    tasks = []
    for backend in backends:
        for seed in seeds:
            spec = generate_spec(seed, gray=args.gray, backend=backend)
            parent_specs[task_key(seed, backend)] = spec
            task = Task(
                key=task_key(seed, backend),
                fn=scenario_task,
                kwargs={
                    "scenario_seed": seed,
                    "mutation": args.mutate,
                    "gray": args.gray,
                    "backend": backend,
                },
                # Longer simulations with longer chains chew more events;
                # mesh scenarios simulate several racks at once.
                cost=spec.duration * (3.0 if spec.mesh else 1.0 + spec.n_backups),
                timeout=args.task_timeout,
            )
            task.fingerprint = task_fingerprint(task)
            tasks.append(task)

    def show(outcome):
        seed_part, _, backend_part = outcome.key.removeprefix("seed").partition(".")
        seed = int(seed_part)
        spec = parent_specs[outcome.key]
        if outcome.ok:
            summary = _ResultSummary.from_dict(outcome.value)
            tag = ",".join(summary.violated_monitors) or "ok"
        else:
            tag = f"ERROR({outcome.status})"
        shape = (
            f"mesh[{spec.mesh['params']['spokes'] + 1}rd,"
            f"{spec.mesh['params']['services']}svc]"
            if spec.mesh
            else f"backups={spec.n_backups}"
        )
        backend_tag = f" [{backend_part}]" if backend_part else ""
        print(
            f"run {seed - args.seed:3d} seed={seed}{backend_tag} {shape} "
            f"faults={len(spec.faults)} -> {tag}"
        )

    merger = DeterministicMerger([t.key for t in tasks], show)
    with ScenarioPool(jobs=args.jobs, cache=cache) as pool:
        outcomes = pool.run(tasks, on_result=merger.offer)

        # Phase 2 — shrink each violating seed, in ascending seed order
        # so output and corpus files match a serial run exactly.  The
        # ddmin loop is inherently sequential (every candidate depends
        # on the previous verdict) but each candidate replays through
        # the pool, keeping isolation and the per-task timeout.
        found = 0
        broken: list[str] = []
        counter = [0]

        def pooled(spec: ScenarioSpec, mutation) -> Optional[_ResultSummary]:
            counter[0] += 1
            outcome = pool.run_one(
                Task(
                    key=f"candidate{counter[0]}",
                    fn=spec_task,
                    kwargs={"spec_data": spec.to_json(), "mutation": mutation},
                    timeout=args.task_timeout,
                )
            )
            if not outcome.ok:
                broken.append(f"{outcome.key}: {outcome.status} ({outcome.error})")
                return None
            return _ResultSummary.from_dict(outcome.value)

        for backend in backends:
            for seed in seeds:
                key = task_key(seed, backend)
                outcome = outcomes[key]
                if not outcome.ok:
                    broken.append(f"{key}: {outcome.status} ({outcome.error})")
                    continue
                summary = _ResultSummary.from_dict(outcome.value)
                if not summary.violated_monitors:
                    continue
                found += 1
                spec = parent_specs[key]
                target = set(summary.violated_monitors)

                def reproduces(candidate: ScenarioSpec) -> bool:
                    result = pooled(candidate, args.mutate)
                    return result is not None and bool(
                        target & set(result.violated_monitors)
                    )

                small = shrink_spec(spec, reproduces, budget=args.shrink_budget)
                small_result = pooled(small, args.mutate)
                clean_result = pooled(small, None)
                if small_result is None or clean_result is None:
                    continue
                prefix = args.mutate or "found"
                if backend == "chain":
                    name = f"{prefix}-seed{seed}.json"
                else:
                    name = f"{prefix}-{backend}-seed{seed}.json"
                save_reproducer(
                    args.out / name, small, args.mutate, small_result, clean_result
                )
                print(
                    f"  shrunk to {len(small.faults)} fault(s), "
                    f"{small.workload} — saved {name}"
                )
                if clean_result.violated_monitors:
                    print(
                        "  NOTE: reproducer violates on UNMUTATED code — real bug!"
                    )

    print(f"{len(tasks)} runs, {found} violating")
    if broken:
        print(f"{len(broken)} scenario task(s) failed to execute:")
        for line in broken:
            print(f"  {line}")
        return 1
    return 1 if (found and args.mutate is None) else 0


if __name__ == "__main__":
    raise SystemExit(main())
