"""The invariant monitors (DESIGN.md §11).

Each monitor receives protocol events from hook sites in the ft-TCP
stack, the acknowledgement channel, and the redirector's data path.
The monitors keep their *own* view of successor progress, recomputed
from the raw 32-bit wire values of every acknowledgement-channel
message — so a bug (or a deliberately disabled gate) in the ft-TCP
bookkeeping cannot hide a violation from them.

Monitors never schedule events and never mutate protocol state; an
armed run takes the same event schedule as an unarmed one.
"""

from __future__ import annotations

import hashlib
from collections import Counter
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro.tcp.seqnum import seq_add, seq_diff

if TYPE_CHECKING:
    from repro.core.ft_tcp import FtConnectionState, FtPort
    from repro.netsim.packet import IPPacket, TCPSegment

#: Per-connection cap on the canonical stream kept by
#: :class:`StreamIntegrityMonitor`; beyond it only the length is
#: tracked (prefix equality of the overflow cannot be checked).
STREAM_CAP = 4 * 1024 * 1024


@dataclass
class Violation:
    """One invariant violation, with enough context to triage."""

    monitor: str
    time: float
    detail: str
    conn_key: Optional[tuple] = None

    def __str__(self) -> str:
        where = f" conn={self.conn_key}" if self.conn_key else ""
        return f"[{self.monitor}] t={self.time:.6f}{where}: {self.detail}"


class InvariantViolationError(AssertionError):
    """Raised by :meth:`InvariantSet.check` when violations were seen."""


def _client_key(state: "FtConnectionState") -> tuple:
    conn = state.conn
    return (
        str(state.port.service_ip),
        state.port.port,
        str(conn.remote_ip),
        conn.remote_port,
    )


class _Monitor:
    """Shared plumbing: monitors report through the owning set."""

    name = "monitor"

    def __init__(self, invset: "InvariantSet"):
        self.invset = invset

    def report(self, detail: str, conn_key: Optional[tuple] = None) -> None:
        self.invset.report(self.name, detail, conn_key)


class _SuccessorView:
    """The monitors' independent record of what each connection's
    successor has reported, recomputed from raw wire values."""

    __slots__ = ("sent_upto", "deposited_upto", "reports")

    def __init__(self):
        self.sent_upto = 0
        self.deposited_upto = 0
        self.reports = 0


class AtomicityMonitor(_Monitor):
    """Paper §4.1: server ``Si`` deposits byte ``k`` only after
    ``S(i+1)`` acknowledged past ``k``, and the client is ACKed byte
    ``k`` only after the whole chain deposited it.  The last backup
    (an ungated connection) is exempt by construction."""

    name = "atomicity"

    def on_deposit(self, state: "FtConnectionState", start: int, data: bytes) -> None:
        if not state.gated:
            return  # last backup / ungated joiner replay: deposits freely
        view = self.invset.successor_view(state)
        end = start + len(data)
        if end > view.deposited_upto:
            self.report(
                f"deposited stream bytes [{start}, {end}) but the successor "
                f"only reported {view.deposited_upto} deposited",
                _client_key(state),
            )

    def on_client_segment(
        self, port: "FtPort", state: "FtConnectionState", segment: "TCPSegment"
    ) -> None:
        if not state.gated or not segment.has_ack:
            return
        conn = state.conn
        if conn.irs is None:
            return
        # Wire ACK → stream offset; our own deposited FIN occupies one
        # sequence position past the payload.
        acked = seq_diff(segment.ack, seq_add(conn.irs, 1))
        if conn.fin_deposited:
            acked -= 1
        view = self.invset.successor_view(state)
        if acked > view.deposited_upto:
            self.report(
                f"ACKed client offset {acked} but the successor only "
                f"reported {view.deposited_upto} deposited",
                _client_key(state),
            )


class OutputOrderingMonitor(_Monitor):
    """Paper §4.1: the primary transmits response byte ``k`` only after
    the successor reported sequence ≥ ``k``, and backup payload is
    filtered — it must never appear on the client path."""

    name = "output-ordering"

    def on_client_segment(
        self, port: "FtPort", state: "FtConnectionState", segment: "TCPSegment"
    ) -> None:
        if not state.gated or not segment.data:
            return
        conn = state.conn
        start = seq_diff(segment.seq, seq_add(conn.iss, 1))
        if start < 0:
            return  # SYN occupies the position before offset 0
        end = start + len(segment.data)
        view = self.invset.successor_view(state)
        if end > view.sent_upto:
            self.report(
                f"sent response bytes [{start}, {end}) to the client but "
                f"the successor only reported sequence {view.sent_upto}",
                _client_key(state),
            )

    def on_unstamped_service_segment(self, packet: "IPPacket", segment: "TCPSegment") -> None:
        """A client-bound segment of a fault-tolerant service crossed
        the redirector without an epoch stamp.  Only the primary's
        output path stamps epochs, so this is backup (or otherwise
        unfiltered) output leaking towards a client link."""
        self.report(
            "unstamped (non-primary) service output reached the client "
            f"path: {packet.src}:{segment.src_port} -> "
            f"{packet.dst}:{segment.dst_port} seq={segment.seq} "
            f"len={len(segment.data)}"
        )


class SinglePrimaryMonitor(_Monitor):
    """DESIGN.md §9: at most one live primary per ``(service_ip,
    port)`` *epoch*, and segments stamped with a stale epoch are
    dropped by the redirector's fence, never delivered client-ward."""

    name = "single-primary"

    def on_promotion(self, port: "FtPort") -> None:
        replicas = self.invset.service_replicas(port.service_ip, port.port)
        if replicas is None:
            return
        live_primaries = [
            h.ft_port
            for h in replicas
            if h.ft_port.is_primary
            and not h.ft_port.shut_down
            and not h.node.host_server.crashed
        ]
        by_epoch = Counter(p.epoch for p in live_primaries)
        for epoch, count in by_epoch.items():
            if count > 1:
                names = [
                    p.host_server.name for p in live_primaries if p.epoch == epoch
                ]
                self.report(
                    f"{count} live primaries share epoch {epoch} for "
                    f"{port.service_ip}:{port.port}: {names}"
                )

    def on_stale_segment_past_fence(
        self, packet: "IPPacket", segment: "TCPSegment", entry_epoch: int
    ) -> None:
        self.report(
            f"stale-epoch segment escaped the fence: epoch {segment.epoch} "
            f"< table epoch {entry_epoch}, "
            f"{packet.src}:{segment.src_port} -> "
            f"{packet.dst}:{segment.dst_port} seq={segment.seq}"
        )


class StreamIntegrityMonitor(_Monitor):
    """DESIGN.md §6 ordering: every replica deposits the *same* client
    byte stream — all deposited streams are prefixes of one canonical
    stream per connection."""

    name = "stream-integrity"

    def __init__(self, invset: "InvariantSet"):
        super().__init__(invset)
        #: client key -> canonical bytes deposited so far (capped).
        self.canonical: dict[tuple, bytearray] = {}
        #: client key -> longest deposited stream seen on any replica.
        self.lengths: dict[tuple, int] = {}

    def on_deposit(self, state: "FtConnectionState", start: int, data: bytes) -> None:
        key = _client_key(state)
        canon = self.canonical.get(key)
        if canon is None:
            canon = self.canonical[key] = bytearray()
        end = start + len(data)
        overlap_end = min(end, len(canon))
        if start < overlap_end and bytes(canon[start:overlap_end]) != data[: overlap_end - start]:
            self.report(
                f"replica {state.port.host_server.name} deposited bytes "
                f"[{start}, {end}) that differ from the canonical stream",
                key,
            )
        elif end > len(canon) and len(canon) < STREAM_CAP:
            if start > len(canon):
                # In-order TCP deposits make this unreachable unless the
                # reassembler itself is broken; record it, don't extend.
                self.report(
                    f"replica {state.port.host_server.name} deposited at "
                    f"offset {start}, past the canonical end {len(canon)}",
                    key,
                )
            else:
                canon.extend(data[len(canon) - start :])
        if end > self.lengths.get(key, 0):
            self.lengths[key] = end

    def digest(self) -> dict[str, tuple[int, str]]:
        """Per-connection ``(length, sha256)`` of the canonical streams
        — part of the scenario fingerprint."""
        out = {}
        for key, canon in sorted(self.canonical.items(), key=lambda kv: str(kv[0])):
            out["/".join(map(str, key))] = (
                self.lengths.get(key, len(canon)),
                hashlib.sha256(bytes(canon)).hexdigest(),
            )
        return out


class ProgressTruthfulnessMonitor(_Monitor):
    """DESIGN.md §14: a replica's progress report may never claim more
    deposited bytes than that replica has *actually* deposited.  The
    monitor cross-references every accepted acknowledgement-channel
    claim against its own record of the claiming replica's deposits
    (from the deposit hook on that replica) — so a lying backup, or a
    corrupted watermark that slipped past the checksum, is caught even
    when the ft-TCP plausibility check has been compiled out (the
    ``progress_check`` mutation)."""

    name = "progress-truthfulness"

    #: A consumed FIN occupies one sequence position past the payload,
    #: and the claim can race the deposit hook by a hair; anything
    #: beyond this is a fabricated watermark.
    SLACK = 64

    def __init__(self, invset: "InvariantSet"):
        super().__init__(invset)
        #: (conn key, replica ip str) -> highest deposited end seen.
        self.deposited_end: dict[tuple, int] = {}

    def on_deposit(self, state: "FtConnectionState", start: int, data: bytes) -> None:
        key = (_client_key(state), str(state.port.host_server.ip))
        end = start + len(data)
        if end > self.deposited_end.get(key, 0):
            self.deposited_end[key] = end

    def on_claim(
        self,
        state: "FtConnectionState",
        seq_next: int,
        ack: int,
        claimant=None,
    ) -> None:
        conn = state.conn
        if claimant is None:
            # Chain semantics: the report can only come from the one
            # successor.  Multi-member backends pass the actual sender
            # so a fast member's claim is never booked against the
            # straggler currently named in ``successor_ip``.
            claimant = state.successor_ip
        if conn.irs is None or claimant is None or ack == 0:
            return  # ack=0 is the no-claim sentinel of ack-less segments
        claimed = seq_diff(ack, seq_add(conn.irs, 1))
        key = (_client_key(state), str(claimant))
        actual = self.deposited_end.get(key, 0)
        if claimed > actual + self.SLACK:
            self.report(
                f"replica {claimant} claims {claimed} bytes "
                f"deposited but has only deposited {actual}",
                _client_key(state),
            )


class OutputLivenessMonitor(_Monitor):
    """DESIGN.md §14: client-visible output may not stall while the
    chain is healthy.  Observed at the ft port's liveness tick (the
    monitor schedules nothing itself): a connection continuously
    blocked on a successor for longer than ``bound`` seconds — while
    that successor is demonstrably *alive* on the acknowledgement
    channel — means graceful degradation failed to excise a
    slow-but-alive replica.  A silent successor (crash, partition) is
    exempt: that is the classic fail-stop path's job, and fail-over
    time is measured elsewhere.

    Disabled until ``bound`` is set (gray-failure scenarios and the D6
    experiment arm it); legacy scenarios take the identical schedule.
    """

    name = "output-liveness"

    def __init__(self, invset: "InvariantSet"):
        super().__init__(invset)
        #: Stall bound in seconds (think K·RTT); ``None`` disables.
        self.bound: Optional[float] = None
        #: How quiet (seconds) a successor may be and still count as
        #: alive at the moment the stall is judged.
        self.alive_quiet = 2.0
        #: id(state) -> [first blocked tick, already reported, marks].
        #: ``marks`` is the successor watermark pair when the clock last
        #: (re)started: any advance resets the episode, mirroring the
        #: port's zero-progress degradation criterion — a saturated but
        #: moving successor is congestion, not a liveness failure.
        self._stalled: dict[int, list] = {}

    def on_liveness_tick(self, port: "FtPort") -> None:
        if self.bound is None:
            return
        from repro.tcp.tcb import TcpState

        now = self.invset.sim.now
        for state in port.states.values():
            key = id(state)
            if state.conn.state == TcpState.CLOSED or not state.blocked_on_successor():
                self._stalled.pop(key, None)
                continue
            marks = (state.successor_sent_upto, state.successor_deposited_upto)
            entry = self._stalled.setdefault(key, [now, False, marks])
            if entry[2] != marks:
                entry[0], entry[2] = now, marks
                continue
            stalled_for = now - entry[0]
            if entry[1] or stalled_for <= self.bound:
                continue
            if state.successor_ip is None or state.successor_silence() > self.alive_quiet:
                continue  # successor not demonstrably alive
            entry[1] = True
            self.report(
                f"{port.host_server.name} output blocked {stalled_for:.3f}s "
                f"(bound {self.bound:.3f}s) on live successor "
                f"{state.successor_ip}",
                _client_key(state),
            )


class InvariantSet:
    """The armed monitors plus shared state: attach with
    :func:`attach_invariants`, read :attr:`violations` afterwards."""

    def __init__(self, sim, on_violation: Optional[Callable[[Violation], None]] = None):
        self.sim = sim
        self.on_violation = on_violation
        self.violations: list[Violation] = []
        self.stats: Counter = Counter()
        self.atomicity = AtomicityMonitor(self)
        self.output_ordering = OutputOrderingMonitor(self)
        self.single_primary = SinglePrimaryMonitor(self)
        self.stream_integrity = StreamIntegrityMonitor(self)
        self.progress_truthfulness = ProgressTruthfulnessMonitor(self)
        self.output_liveness = OutputLivenessMonitor(self)
        #: (service_ip, port) -> the service's replica list (live view).
        self._services: dict[tuple, list] = {}
        #: FtConnectionState -> the monitors' own successor record.
        self._successor: dict[int, _SuccessorView] = {}
        self._states: dict[int, "FtConnectionState"] = {}
        #: Set by :func:`attach_invariants` — the redirector table the
        #: packet hook consults (single-redirector deployments).
        self._redirector_table = None
        #: id(redirector) -> installed hook, one per armed redirector
        #: (mesh deployments arm every redirector; each hook closes
        #: over its own table).
        self._armed_redirectors: dict[int, Callable] = {}

    # -- wiring ----------------------------------------------------------

    def watch_service(self, service) -> None:
        self._services[(service.service_ip, service.port)] = service.replicas

    def service_replicas(self, service_ip, port: int):
        return self._services.get((service_ip, port))

    def successor_view(self, state: "FtConnectionState") -> _SuccessorView:
        view = self._successor.get(id(state))
        if view is None:
            view = self._successor[id(state)] = _SuccessorView()
            self._states[id(state)] = state  # keep the keyed object alive
        return view

    # -- reporting ---------------------------------------------------------

    def report(self, monitor: str, detail: str, conn_key: Optional[tuple] = None) -> None:
        violation = Violation(monitor, self.sim.now, detail, conn_key)
        self.violations.append(violation)
        self.stats[f"violation:{monitor}"] += 1
        if self.on_violation is not None:
            self.on_violation(violation)

    def check(self) -> None:
        """Raise if any monitor reported a violation."""
        if self.violations:
            lines = "\n".join(str(v) for v in self.violations[:20])
            more = len(self.violations) - 20
            if more > 0:
                lines += f"\n... and {more} more"
            raise InvariantViolationError(
                f"{len(self.violations)} invariant violation(s):\n{lines}"
            )

    def violated_monitors(self) -> list[str]:
        return sorted({v.monitor for v in self.violations})

    # -- hook-site entry points (called only when armed) -------------------

    def on_deposit(self, state: "FtConnectionState", start: int, data: bytes) -> None:
        self.stats["deposits"] += 1
        self.atomicity.on_deposit(state, start, data)
        self.stream_integrity.on_deposit(state, start, data)
        self.progress_truthfulness.on_deposit(state, start, data)

    def on_successor_report(
        self, state: "FtConnectionState", seq_next: int, ack: int, claimant=None
    ) -> None:
        """Raw flow-control fields from the acknowledgement channel —
        converted to stream offsets here, independently of the ft-TCP
        bookkeeping the gates read.  Fired for *accepted* reports only
        (the ft-TCP layer drops checksum/epoch/plausibility rejects
        before they reach any gate — or this hook).  ``claimant`` is
        the reporting replica when the backend tracks several per
        connection; ``None`` means chain semantics (the single
        successor named in the state)."""
        self.stats["successor_reports"] += 1
        conn = state.conn
        if conn.irs is None:
            return
        self.progress_truthfulness.on_claim(state, seq_next, ack, claimant)
        view = self.successor_view(state)
        view.reports += 1
        sent = seq_diff(seq_next, seq_add(conn.iss, 1))
        deposited = seq_diff(ack, seq_add(conn.irs, 1))
        if sent > view.sent_upto:
            view.sent_upto = sent
        if deposited > view.deposited_upto:
            view.deposited_upto = deposited

    def on_client_segment(
        self, port: "FtPort", state: "FtConnectionState", segment: "TCPSegment"
    ) -> None:
        self.stats["client_segments"] += 1
        self.atomicity.on_client_segment(port, state, segment)
        self.output_ordering.on_client_segment(port, state, segment)

    def on_promotion(self, port: "FtPort") -> None:
        self.stats["promotions"] += 1
        self.single_primary.on_promotion(port)

    def on_ack_channel_message(self, message, src_ip) -> None:
        self.stats["ack_channel_messages"] += 1

    def on_liveness_tick(self, port: "FtPort") -> None:
        self.stats["liveness_ticks"] += 1
        self.output_liveness.on_liveness_tick(port)

    def on_fenced(self, segment_epoch: int, entry) -> None:
        self.stats["segments_fenced"] += 1

    def redirector_hook(self, packet: "IPPacket", nic) -> bool:
        """Observe-only packet hook, inserted immediately *after* the
        redirector's fence: any stale-epoch segment that reaches it
        escaped the fence.  Always returns False (never consumes)."""
        return self._observe_service_segment(packet, self._redirector_table)

    def _observe_service_segment(self, packet: "IPPacket", table) -> bool:
        from repro.netsim.packet import Protocol, TCPSegment

        if packet.protocol != Protocol.TCP or packet.is_fragment:
            return False
        segment = packet.payload
        if not isinstance(segment, TCPSegment):
            return False
        entry = table.fast.get((packet.src._value, segment.src_port))
        if entry is None or not entry.fault_tolerant:
            return False
        self.stats["service_output_segments"] += 1
        if segment.epoch is None:
            self.output_ordering.on_unstamped_service_segment(packet, segment)
        elif segment.epoch < entry.epoch:
            self.single_primary.on_stale_segment_past_fence(
                packet, segment, entry.epoch
            )
        return False

    def arm_redirector(self, redirector) -> None:
        """Splice an observe-only hook behind *this* redirector's fence.
        Mesh deployments call this once per redirector: each hook
        consults the table of the redirector it is installed on, so a
        service's output is checked against the local epoch wherever it
        crosses the mesh.  Idempotent per redirector."""
        if id(redirector) in self._armed_redirectors:
            return
        table = redirector.table

        def hook(packet, nic, _table=table):
            return self._observe_service_segment(packet, _table)

        self._armed_redirectors[id(redirector)] = hook
        hooks = redirector.kernel.packet_hooks
        try:
            index = hooks.index(redirector._fence_hook) + 1
        except ValueError:
            index = len(hooks)
        hooks.insert(index, hook)


def attach_invariants(
    system, on_violation: Optional[Callable[[Violation], None]] = None
) -> InvariantSet:
    """Arm the invariant monitors on a wired FT deployment.

    ``system`` is anything shaped like
    :class:`~repro.experiments.testbeds.FtSystem` (``sim``, ``service``,
    ``redirector``).  Sets ``sim.invariants``, watches the service's
    replica list, and splices an observe-only packet hook into the
    redirector right behind the epoch fence.  Idempotent per system.
    """
    sim = system.sim
    invset = sim.invariants
    if invset is None:
        invset = InvariantSet(sim, on_violation)
        sim.invariants = invset
    invset.watch_service(system.service)
    redirector = system.redirector
    invset._redirector_table = redirector.table
    hooks = redirector.kernel.packet_hooks
    if invset.redirector_hook not in hooks:
        try:
            index = hooks.index(redirector._fence_hook) + 1
        except ValueError:
            index = len(hooks)
        hooks.insert(index, invset.redirector_hook)
    return invset


def attach_mesh_invariants(
    sim,
    redirectors,
    services=(),
    on_violation: Optional[Callable[[Violation], None]] = None,
) -> InvariantSet:
    """Arm the invariant monitors across a redirector mesh: one
    observe-only hook per redirector (each consulting its own table)
    and one replica-list watch per service.  Idempotent; safe to call
    again as services are added."""
    invset = sim.invariants
    if invset is None:
        invset = InvariantSet(sim, on_violation)
        sim.invariants = invset
    for service in services:
        invset.watch_service(service)
    for redirector in redirectors:
        invset.arm_redirector(redirector)
    return invset
