"""Runtime invariant monitors and the fault-schedule fuzzer.

The paper's §4 guarantees are safety invariants; this package turns
them into machine-checked properties that hold *during* execution, not
just at the end of a scenario:

* :class:`AtomicityMonitor` — no replica deposits byte ``k`` (and the
  client is never ACKed byte ``k``) before the successor reported an
  acknowledgement beyond ``k``; the last backup is exempt.
* :class:`OutputOrderingMonitor` — the primary sends byte ``k`` of the
  response only after the successor reported sequence ≥ ``k``; backup
  payload never reaches the client path.
* :class:`SinglePrimaryMonitor` — at most one live primary per
  ``(service_ip, port)`` epoch, and stale-epoch segments really are
  fenced at the redirector.
* :class:`StreamIntegrityMonitor` — the replicas' deposited client
  streams are identical prefixes of one canonical stream.

Arm them with :func:`attach_invariants`; detached (the default) they
cost nothing — ``sim.invariants`` is a plain attribute that hook sites
test inline, exactly like ``sim.tracer`` (DESIGN.md §10/§11).
"""

from .monitors import (
    AtomicityMonitor,
    InvariantSet,
    InvariantViolationError,
    OutputOrderingMonitor,
    SinglePrimaryMonitor,
    StreamIntegrityMonitor,
    Violation,
    attach_invariants,
)

__all__ = [
    "AtomicityMonitor",
    "InvariantSet",
    "InvariantViolationError",
    "OutputOrderingMonitor",
    "SinglePrimaryMonitor",
    "StreamIntegrityMonitor",
    "Violation",
    "attach_invariants",
]
