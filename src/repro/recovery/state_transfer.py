"""Live state transfer for in-flight connections (EXTENSION, DESIGN.md
§8; the mechanism follows HyCoR-style checkpoint-plus-replay).

The donor — the current chain tail, which deposits first and therefore
holds the most advanced client stream — ships, per transferable
connection, a :class:`~repro.hydranet.mgmt.ConnSnapshot`: the 4-tuple,
both initial sequence numbers, the full deposited client byte stream
(from the catch-up log), and how far the client has acknowledged the
response.  The joiner *replays* the client stream through its own
deterministic server program, regenerating the response stream locally
— no response bytes ever travel on the management wire, which keeps
snapshots half the size and reuses the determinism ft-TCP already
demands of server programs.

The functions here are free functions over an ``FtPort`` rather than
methods so that :mod:`repro.core.ft_tcp` can stay import-cycle-free
(it lazy-imports this module from inside the live-join methods).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.hydranet.mgmt import ConnSnapshot, StateSnapshot
from repro.netsim.addressing import as_address
from repro.tcp.tcb import TcpConnection, TcpState

if TYPE_CHECKING:
    from repro.core.ft_tcp import ClientKey, FtPort


def snapshot_connections(
    ft_port: "FtPort",
) -> tuple[list[ConnSnapshot], set["ClientKey"]]:
    """Donor side: snapshot every transferable in-flight connection.

    A connection is transferable when it is ESTABLISHED, neither side
    has started closing, and the catch-up log still holds the complete
    client stream.  Anything else is skipped — it keeps running with
    whatever redundancy it has (per-connection chain membership).
    """
    snaps: list[ConnSnapshot] = []
    keys: set["ClientKey"] = set()
    for key, state in ft_port.states.items():
        conn = state.conn
        if (
            conn.state != TcpState.ESTABLISHED
            or conn.irs is None
            or conn.fin_queued
            or conn.peer_fin_offset is not None
            or state.catchup_log.truncated
        ):
            continue
        snaps.append(
            ConnSnapshot(
                client_ip=conn.remote_ip,
                client_port=conn.remote_port,
                iss=conn.iss,
                irs=conn.irs,
                input=state.catchup_log.contents(),
                input_start=0,
                client_acked=conn.snd_una,
                peer_window=conn.peer_window,
            )
        )
        keys.add(key)
    return snaps, keys


def install_snapshot(ft_port: "FtPort", snapshot: StateSnapshot) -> list["ClientKey"]:
    """Joiner side: install a base snapshot; returns the keys of the
    connections now held live (the splice will gate exactly these).

    The snapshot also carries the donor's view epoch: the joiner starts
    epoch-aware so that, if it is ever promoted, it stamps client-bound
    segments with a view the redirector's fence accepts (DESIGN.md §9)."""
    ft_port.epoch = max(ft_port.epoch, snapshot.epoch)
    keys: list["ClientKey"] = []
    for conn_snap in snapshot.conns:
        if install_connection(ft_port, conn_snap):
            keys.append((as_address(conn_snap.client_ip), conn_snap.client_port))
    return keys


def install_connection(ft_port: "FtPort", snap: ConnSnapshot) -> bool:
    """Synthesize one ESTABLISHED connection from a snapshot and replay
    the client stream through the local server program.

    Mirrors what the stack's SYN path would have built had this replica
    been in the multicast set from the start: same deterministic ISS
    (shipped in the snapshot and identical by construction), same
    listener wiring, same ft gate configuration.
    """
    listener = ft_port.listener
    if listener is None or listener.closed:
        return False
    stack = listener.stack
    local_ip = ft_port.service_ip
    remote_ip = as_address(snap.client_ip)
    key4 = (local_ip, listener.port, remote_ip, snap.client_port)
    if key4 in stack.connections:
        return False
    nic = stack.host.kernel.route_lookup(remote_ip)
    mtu = nic.mtu if nic is not None else 1500
    opts = listener.options
    conn = TcpConnection(
        stack,
        local_ip,
        listener.port,
        remote_ip,
        snap.client_port,
        opts,
        opts.effective_mss(mtu),
        snap.iss,
    )
    conn._listener = listener
    stack.connections[key4] = conn
    ft_port._configure_connection(conn)
    # The handshake already happened (on the donor); synthesize its
    # outcome so send()/recv() work immediately.
    conn.irs = snap.irs
    conn.peer_window = snap.peer_window
    conn.syn_acked = True
    conn.state = TcpState.ESTABLISHED
    listener.connections_accepted += 1
    if listener.on_accept is not None:
        listener.on_accept(conn)
    # Replay: the deposit path runs the bytes through the server
    # program, which regenerates the response stream into the send
    # buffer (suppressed by the output filter — we are a backup).
    if snap.input:
        conn.reassembler.add(snap.input_start, snap.input)
        conn.gates_changed()
    _apply_client_ack(conn, snap.client_acked)
    for delta in ft_port._pending_deltas.pop((remote_ip, snap.client_port), []):
        apply_delta(ft_port, delta)
    ft_port.connections_transferred += 1
    return True


def apply_delta(ft_port: "FtPort", snap: ConnSnapshot) -> None:
    """Joiner side: apply one incremental catch-up delta (a single
    deposit forwarded by the donor between base snapshot and splice).
    Deltas carry absolute stream offsets, so arrival order does not
    matter and overlap with multicast traffic is clipped for free by
    the reassembler."""
    state = ft_port.states.get((as_address(snap.client_ip), snap.client_port))
    if state is None:
        return
    conn = state.conn
    if conn.state == TcpState.CLOSED:
        return
    if snap.input:
        conn.reassembler.add(snap.input_start, snap.input)
        conn.gates_changed()
    _apply_client_ack(conn, snap.client_acked)


def _apply_client_ack(conn: TcpConnection, acked: int) -> None:
    """Advance the synthesized connection's send side to what the
    client has already acknowledged (via the donor).  The replayed
    response below this point needs no retransmission state.

    Applied in steps of at most one send-buffer's worth: the replay may
    have regenerated more response than the buffer holds (the server
    program parks the overflow behind ``on_send_space``), so each
    ack-and-free round lets the program refill before the next round —
    a single clamped pass would strand ``snd_una`` below ``acked``."""
    while True:
        step = min(acked, conn.send_buffer.end)
        if step <= conn.snd_una:
            break
        conn.snd_una = step
        conn.snd_nxt = max(conn.snd_nxt, step)
        conn.snd_max = max(conn.snd_max, conn.snd_nxt)
        conn.send_buffer.ack_to(step)
        conn.scoreboard.advance(step)
        if conn.on_send_space is not None and conn.send_buffer.free_space > 0:
            conn.on_send_space()
    if conn.snd_una >= conn.snd_nxt and not (conn.fin_sent and not conn.fin_acked):
        conn.rtx_timer.stop()
    conn.gates_changed()
