"""The spare pool: idle, fully-equipped host servers kept warm so the
recovery manager can draft a replacement replica without operator help.

A spare is an :class:`~repro.core.service.FtNode` that is *not* bound
to the service — it runs the management daemon and has an
acknowledgement-channel endpoint, but holds no connections and is not
in any redirector table.  Drafting pops it from the pool; returning a
recovered (and decommissioned) server puts it back into rotation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional

if TYPE_CHECKING:
    from repro.core.service import FtNode


class SparePool:
    """FIFO pool of idle replacement nodes."""

    def __init__(self, nodes: Iterable["FtNode"] = ()):
        self._nodes: list["FtNode"] = list(nodes)
        self.drafted = 0

    def add(self, node: "FtNode") -> None:
        if node not in self._nodes:
            self._nodes.append(node)

    def draft(self) -> Optional["FtNode"]:
        """Pop the first spare whose host is actually up (a crashed
        spare is useless and stays pooled until it recovers)."""
        for i, node in enumerate(self._nodes):
            if not node.host_server.crashed:
                self.drafted += 1
                return self._nodes.pop(i)
        return None

    @property
    def available(self) -> int:
        return sum(1 for n in self._nodes if not n.host_server.crashed)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: object) -> bool:
        return node in self._nodes

    def __repr__(self) -> str:
        return f"<SparePool {self.available}/{len(self._nodes)} available>"
