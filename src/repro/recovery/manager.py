"""The recovery manager: autonomous redundancy restoration (EXTENSION,
DESIGN.md §8 — the paper's §6 lists this as future work).

The manager runs at the redirector's management plane.  It observes the
traffic the redirector daemon already handles — membership changes and
failure reports — and maintains a configured *target degree* for one
replicated service.  When the degree drops it drafts a replacement from
the :class:`~repro.recovery.spare_pool.SparePool` and runs the live-join
protocol:

1. **Provision** — the service's server program is bound on the spare
   as a *joiner*: muted failure detector, not registered with the
   redirector (so it is outside the multicast set and the chain).
2. **Catch-up** (phase one) — a ``JoinRequest`` goes to the donor (the
   current chain tail, which deposits first and holds the most
   advanced client stream).  The donor ships a base ``StateSnapshot``
   and keeps forwarding every deposit as a delta; the joiner replays
   the client stream through its deterministic server program and
   answers ``JoinReady``.  The chain keeps running untouched — the
   client observes nothing.
3. **Splice** (phase two) — the manager calls the redirector daemon's
   ``splice_backup``: the joiner enters the multicast set, the chain is
   re-pushed, and a ``ChainSplice`` atomically cuts the per-connection
   gates over to the new last backup.

One join runs at a time; a join that outlives ``join_timeout`` (donor
died mid-transfer, say) is aborted and the spare returned to the pool —
the next poll tick simply tries again against the new chain tail.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.hydranet.daemons import RedirectorDaemon
from repro.hydranet.mgmt import JOIN_RETRY, FailureReport, JoinReady, JoinRequest
from repro.hydranet.redirector import ServiceKey
from repro.metrics.recovery import DegreeTimeline, RecoveryIncident
from repro.netsim.addressing import as_address
from repro.netsim.simulator import Timer

from .spare_pool import SparePool

if TYPE_CHECKING:
    from repro.core.service import FtNode, ReplicaHandle, ReplicatedTcpService


@dataclass
class _JoinInProgress:
    node: "FtNode"
    handle: "ReplicaHandle"
    donor_ip: object
    started_at: float


class RecoveryManager:
    """Watches one replicated service and keeps it at target degree."""

    def __init__(
        self,
        service: "ReplicatedTcpService",
        daemon: RedirectorDaemon,
        spares: Optional[SparePool] = None,
        target_degree: int = 2,
        poll_interval: float = 1.0,
        join_timeout: float = 10.0,
    ):
        self.service = service
        self.daemon = daemon
        self.sim = daemon.sim
        self.spares = spares if spares is not None else SparePool()
        self.target_degree = target_degree
        self.poll_interval = poll_interval
        self.join_timeout = join_timeout
        self._join: Optional[_JoinInProgress] = None
        self._degraded_at: Optional[float] = None
        self.incidents: list[RecoveryIncident] = []
        self.timeline = DegreeTimeline()
        self.joins_started = 0
        self.joins_completed = 0
        self.joins_aborted = 0
        daemon.on_membership_change = self._on_membership_change
        daemon.on_failure_report = self._on_failure_report
        daemon.on_join_ready = self._on_join_ready
        service.recovery = self
        self.timeline.record(self.sim.now, self._degree())
        self._poll_timer = Timer(self.sim, self._poll)
        self._poll_timer.start(poll_interval)

    # -- observation ------------------------------------------------------

    def _key(self) -> ServiceKey:
        return ServiceKey(self.service.service_ip, self.service.port)

    def _degree(self) -> int:
        """Replication degree as the redirector sees it (authoritative:
        a joiner is not counted until the splice installs it)."""
        entry = self.daemon.redirector.table.get(self._key())
        return len(entry.replicas) if entry is not None else 0

    def _on_membership_change(self, key: ServiceKey) -> None:
        if key != self._key():
            return
        now = self.sim.now
        degree = self._degree()
        self.timeline.record(now, degree)
        if degree < self.target_degree and self._degraded_at is None:
            self._degraded_at = now
        self._check()

    def _on_failure_report(self, msg: FailureReport) -> None:
        if (
            as_address(msg.service_ip) == self.service.service_ip
            and msg.port == self.service.port
            and self._degraded_at is None
        ):
            # Detection time, not removal time: MTTR starts the moment
            # the system first learned something was wrong.
            self._degraded_at = self.sim.now

    def _poll(self) -> None:
        self._poll_timer.start(self.poll_interval)
        self._check()

    # -- the control loop -------------------------------------------------

    def _check(self) -> None:
        join = self._join
        if join is not None:
            entry = self.daemon.redirector.table.get(self._key())
            if entry is not None and join.donor_ip not in entry.replicas:
                # The donor was excised mid-feed: its delta stream died
                # with it, so the joiner's catch-up cut can never reach
                # the live tail's stream.  Splicing anyway would gate
                # the tail on a permanently-gapped successor — abort
                # and restart against the new tail instead.
                self._abort_join()
            elif self.sim.now - join.started_at > self.join_timeout:
                self._abort_join()
            else:
                return
        degree = self._degree()
        if degree == 0 or degree >= self.target_degree:
            # Degree 0 means the whole service is gone — there is no
            # donor and no chain to splice into; nothing we can do.
            if degree >= self.target_degree:
                self._degraded_at = None
            return
        node = self.spares.draft()
        if node is None:
            return
        self._start_join(node)

    def _start_join(self, node: "FtNode") -> Optional["ReplicaHandle"]:
        entry = self.daemon.redirector.table.get(self._key())
        if entry is None or not entry.replicas:
            self.spares.add(node)
            return None
        from repro.replication import strategy_layout

        if strategy_layout(self.service.strategy) == "star":
            # Star backends (broadcast/checkpoint): the primary is the
            # one replica guaranteed to hold the complete client
            # stream, and it is also the joiner's future report target
            # — donate from there.
            donor_ip = entry.replicas[0]
        else:
            donor_ip = entry.replicas[-1]
        handle = self.service.provision_joiner(node)
        join = _JoinInProgress(
            node=node, handle=handle, donor_ip=donor_ip, started_at=self.sim.now
        )
        self._join = join
        self.joins_started += 1

        def give_up(_message, join_ref=join):
            # The donor never acknowledged the JoinRequest (crashed or
            # partitioned): abort now instead of waiting out the join
            # timeout — the next poll tick retries against the new tail.
            if self._join is join_ref:
                self._abort_join()

        self.daemon.channel.send(
            JoinRequest(self.service.service_ip, self.service.port, node.ip),
            donor_ip,
            policy=JOIN_RETRY,
            on_give_up=give_up,
        )
        return handle

    def _on_join_ready(self, msg: JoinReady) -> None:
        join = self._join
        if (
            join is None
            or as_address(msg.joiner_ip) != join.node.ip
            or as_address(msg.service_ip) != self.service.service_ip
            or msg.port != self.service.port
        ):
            return
        entry = self.daemon.redirector.table.get(self._key())
        if entry is None or join.donor_ip not in entry.replicas:
            # JoinReady raced the donor's excision: the joiner is
            # synced to a stream that ends where the dead donor's
            # deposits ended, not where the live tail's do.
            self._abort_join()
            return
        spliced = self.daemon.splice_backup(
            self.service.service_ip, self.service.port, join.node.ip, msg.conn_keys
        )
        if not spliced:
            self._abort_join()
            return
        now = self.sim.now
        self._join = None
        self.joins_completed += 1
        self.incidents.append(
            RecoveryIncident(
                degraded_at=(
                    self._degraded_at if self._degraded_at is not None else join.started_at
                ),
                catchup_started_at=join.started_at,
                restored_at=now,
                connections_transferred=len(msg.conn_keys),
                transfer_bytes=msg.bytes_received,
            )
        )
        if self._degree() >= self.target_degree:
            self._degraded_at = None
        # Another failure may have piled up while this join ran.
        self._check()

    def _abort_join(self) -> None:
        join = self._join
        if join is None:
            return
        self._join = None
        self.joins_aborted += 1
        node = join.node
        node.stack.decommission(self.service.service_ip, self.service.port)
        if join.handle in self.service.replicas:
            self.service.replicas.remove(join.handle)
        self.spares.add(node)

    # -- operator API -----------------------------------------------------

    def recommission(self, node: "FtNode") -> Optional["ReplicaHandle"]:
        """Live re-commission of a recovered server: run the full
        join protocol so the node also catches up *in-flight*
        connections (the cold path only serves new ones).  Returns the
        joining handle, or None if the node was pooled instead (another
        join already in flight, or no donor available)."""
        if self._join is not None:
            self.spares.add(node)
            return None
        return self._start_join(node)

    def return_spare(self, node: "FtNode") -> None:
        """Wipe a recovered node's stale service state and put it back
        in the pool for the next draft."""
        node.stack.decommission(self.service.service_ip, self.service.port)
        for handle in list(self.service.replicas):
            if handle.node is node:
                self.service.replicas.remove(handle)
        self.spares.add(node)

    def stop(self) -> None:
        self._poll_timer.stop()

    @property
    def join_in_progress(self) -> bool:
        return self._join is not None
