"""Autonomous redundancy restoration with live state transfer
(EXTENSION — DESIGN.md §8; the paper's §6 lists re-integration of
recovered servers as future work).

Three pieces:

* :class:`SparePool` — idle, fully-equipped host servers to draft
  replacements from;
* :mod:`~repro.recovery.state_transfer` — checkpoint-plus-replay of
  in-flight connections from the chain tail to the joiner;
* :class:`RecoveryManager` — the control loop at the redirector's
  management plane that notices degraded degree, runs the live-join
  protocol, and splices the replacement in as the new last backup.
"""

from .manager import RecoveryManager
from .spare_pool import SparePool
from .state_transfer import (
    apply_delta,
    install_connection,
    install_snapshot,
    snapshot_connections,
)

__all__ = [
    "RecoveryManager",
    "SparePool",
    "apply_delta",
    "install_connection",
    "install_snapshot",
    "snapshot_connections",
]
