"""The acknowledgement channel (paper §4.3).

Backups are daisy-chained along a one-way channel ending at the
primary.  When a backup is ready to send a TCP packet it does *not*
send it to the client; instead it forwards the two flow-control fields
of the TCP header — the SEQUENCE NUMBER and the ACKNOWLEDGEMENT
NUMBER — to the previous server in the chain.  The channel is a
kernel-to-kernel UDP connection: low overhead, no ordering across
connections, and lost messages are absorbed by client retransmissions
(the trade-off the paper makes explicit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro.netsim.addressing import IPAddress, as_address
from repro.netsim.simulator import Timer
from repro.udp.udp import UdpSocket

if TYPE_CHECKING:
    from repro.hydranet.host_server import HostServer

ACK_CHANNEL_PORT = 5500


def _fletcher_mix(values) -> int:
    """Deterministic 32-bit checksum over a sequence of ints (FNV-1a
    over the 32-bit truncations) — the simulated stand-in for the
    UDP/IP checksum that real ack-channel datagrams would carry."""
    h = 0x811C9DC5
    for v in values:
        h ^= int(v) & 0xFFFFFFFF
        h = (h * 0x01000193) & 0xFFFFFFFF
    return h


@dataclass
class AckChannelMessage:
    """Flow-control fields of one would-be TCP packet of a backup.

    ``seq_next`` is the sequence number *after* the packet (SEQ plus
    the packet's span), i.e. the first byte the backup has not yet
    sent; ``ack`` is the packet's ACKNOWLEDGEMENT NUMBER.  Both are raw
    32-bit wire values: primary and backups share ISS/IRS (deterministic
    ISS), so the numbers are directly comparable at the receiver.

    ``epoch`` stamps the sender's configuration epoch (DESIGN.md §9) so
    a receiver can reject reports from a stale view, and ``checksum``
    covers every field: both live in the 36-byte wire image's header
    headroom, so the wire size is unchanged.  ``checksum=None`` (the
    default) self-computes — a corrupted-in-flight copy keeps the
    original's now-stale checksum and is dropped on arrival.
    """

    service_ip: IPAddress
    service_port: int
    client_ip: IPAddress
    client_port: int
    seq_next: int
    ack: int
    epoch: int = 0
    checksum: Optional[int] = None

    wire_size = 36

    def __post_init__(self):
        if self.checksum is None:
            self.checksum = self._compute_checksum()

    def _compute_checksum(self) -> int:
        return _fletcher_mix(
            (
                self.service_ip,
                self.service_port,
                self.client_ip,
                self.client_port,
                self.seq_next,
                self.ack,
                self.epoch,
            )
        )

    def checksum_valid(self) -> bool:
        return self.checksum == self._compute_checksum()

    @property
    def connection_key(self) -> tuple[IPAddress, int, IPAddress, int]:
        return (self.service_ip, self.service_port, self.client_ip, self.client_port)


class AckChannelEndpoint:
    """The per-host-server UDP endpoint of the acknowledgement channel.

    Dispatches incoming messages to the ft port handling the service,
    and sends outgoing messages to the predecessor server.
    """

    #: Class-level so the mutation harness can switch validation off
    #: and prove the monitors notice (tests/invariants/test_mutation).
    validate_checksums = True

    def __init__(self, host_server: "HostServer", port: int = ACK_CHANNEL_PORT):
        self.host_server = host_server
        self.sim = host_server.sim
        self.port = port
        self.socket: UdpSocket = host_server.node.udp_socket()
        self.socket.bind(port)
        self.socket.on_datagram = self._receive
        # (service_ip, service_port) -> handler(message, sender_ip)
        self._handlers: dict[
            tuple[IPAddress, int], Callable[[AckChannelMessage, IPAddress], None]
        ] = {}
        self.messages_sent = 0
        self.messages_received = 0
        self.messages_unclaimed = 0
        self.messages_corrupt_dropped = 0

    def register(
        self,
        service_ip,
        service_port: int,
        handler: Callable[[AckChannelMessage, IPAddress], None],
    ) -> None:
        self._handlers[(as_address(service_ip), service_port)] = handler

    def unregister(self, service_ip, service_port: int) -> None:
        self._handlers.pop((as_address(service_ip), service_port), None)

    def send(self, message: AckChannelMessage, predecessor_ip) -> None:
        """Forward flow-control information up the chain."""
        self.messages_sent += 1
        self.socket.send_to(as_address(predecessor_ip), self.port, message)

    def _receive(self, data: object, src_ip: IPAddress, src_port: int, dst_ip) -> None:
        if not isinstance(data, AckChannelMessage):
            return
        self.messages_received += 1
        self._dispatch(data, src_ip)

    def _dispatch(self, data: AckChannelMessage, src_ip: IPAddress) -> None:
        if self.validate_checksums and not data.checksum_valid():
            # Corrupted in flight: drop before anything (including the
            # monitors) can see the bogus watermarks.  Honest senders
            # always produce a valid checksum, so this path only fires
            # under fault injection.
            self.messages_corrupt_dropped += 1
            return
        invariants = self.sim.invariants
        if invariants is not None:
            invariants.on_ack_channel_message(data, src_ip)
        handler = self._handlers.get((data.service_ip, data.service_port))
        if handler is None:
            self.messages_unclaimed += 1
            return
        handler(data, src_ip)


@dataclass
class SequencedAckMessage:
    """An :class:`AckChannelMessage` wrapped with a channel sequence
    number (ordered-channel mode)."""

    seq: int
    inner: AckChannelMessage
    wire_size = AckChannelMessage.wire_size + 8


@dataclass
class ChannelAck:
    """Receiver→sender acknowledgement of a channel sequence number."""

    acked: int
    wire_size = 12


class OrderedAckChannelEndpoint(AckChannelEndpoint):
    """A *reliable, in-order* acknowledgement channel — the design the
    paper considered and rejected (§4.3): it would provide message
    ordering across connections to the same replicated port, at the
    cost of per-message acknowledgements and retransmissions on the
    channel itself.

    Messages to each predecessor are numbered; the receiver delivers
    strictly in order (holding back gaps) and acks cumulatively; the
    sender retransmits unacknowledged messages.  Ablation A6 measures
    what that buys and costs against the paper's plain-UDP choice.
    """

    def __init__(
        self,
        host_server: "HostServer",
        port: int = ACK_CHANNEL_PORT,
        retransmit_interval: float = 0.1,
        max_tries: int = 20,
    ):
        super().__init__(host_server, port)
        self.retransmit_interval = retransmit_interval
        self.max_tries = max_tries
        # Sender side, per destination.
        self._next_seq: dict[IPAddress, int] = {}
        self._unacked: dict[IPAddress, dict[int, SequencedAckMessage]] = {}
        self._timers: dict[IPAddress, Timer] = {}
        self._tries: dict[IPAddress, int] = {}
        # Receiver side, per source.
        self._expected: dict[IPAddress, int] = {}
        self._holdback: dict[IPAddress, dict[int, SequencedAckMessage]] = {}
        self.channel_retransmissions = 0
        self.held_back = 0

    # -- sender ----------------------------------------------------------

    def send(self, message: AckChannelMessage, predecessor_ip) -> None:
        dst = as_address(predecessor_ip)
        seq = self._next_seq.get(dst, 0)
        self._next_seq[dst] = seq + 1
        wrapped = SequencedAckMessage(seq, message)
        self._unacked.setdefault(dst, {})[seq] = wrapped
        self.messages_sent += 1
        self.socket.send_to(dst, self.port, wrapped)
        if dst not in self._timers:
            self._timers[dst] = Timer(self.sim, lambda d=dst: self._retransmit(d))
        if not self._timers[dst].running:
            self._tries[dst] = 0
            self._timers[dst].start(self.retransmit_interval)

    def _retransmit(self, dst: IPAddress) -> None:
        if self.host_server.crashed:
            return
        pending = self._unacked.get(dst)
        if not pending:
            return
        self._tries[dst] = self._tries.get(dst, 0) + 1
        if self._tries[dst] > self.max_tries:
            # The predecessor is gone; reconfiguration will handle it.
            pending.clear()
            return
        for seq in sorted(pending):
            self.channel_retransmissions += 1
            self.socket.send_to(dst, self.port, pending[seq])
        self._timers[dst].start(self.retransmit_interval)

    # -- receiver -----------------------------------------------------------

    def _receive(self, data: object, src_ip: IPAddress, src_port: int, dst_ip) -> None:
        if isinstance(data, ChannelAck):
            pending = self._unacked.get(src_ip, {})
            for seq in [s for s in pending if s < data.acked]:
                del pending[seq]
            if not pending:
                self._tries[src_ip] = 0
                timer = self._timers.get(src_ip)
                if timer is not None:
                    timer.stop()
            return
        if isinstance(data, AckChannelMessage):
            # Interoperate with plain (unordered) senders.
            self.messages_received += 1
            self._dispatch(data, src_ip)
            return
        if not isinstance(data, SequencedAckMessage):
            return
        expected = self._expected.get(src_ip, 0)
        if data.seq < expected:
            pass  # duplicate
        elif data.seq == expected:
            self.messages_received += 1
            self._dispatch(data.inner, src_ip)
            expected += 1
            holdback = self._holdback.get(src_ip, {})
            while expected in holdback:
                queued = holdback.pop(expected)
                self.messages_received += 1
                self._dispatch(queued.inner, src_ip)
                expected += 1
            self._expected[src_ip] = expected
        else:
            self.held_back += 1
            self._holdback.setdefault(src_ip, {})[data.seq] = data
        self.socket.send_to(
            src_ip, self.port, ChannelAck(acked=self._expected.get(src_ip, 0))
        )
