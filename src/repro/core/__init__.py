"""HydraNet-FT core (paper §4): replicated ports, the acknowledgement
channel, ft-TCP gating, failure detection, and service orchestration."""

from .ack_channel import (
    ACK_CHANNEL_PORT,
    AckChannelEndpoint,
    AckChannelMessage,
    OrderedAckChannelEndpoint,
)
from .failure_detector import RetransmissionDetector
from .heartbeat import Heartbeat, HeartbeatDetector, HeartbeatSender, enable_heartbeats
from .ft_tcp import FtConnectionState, FtError, FtPort, FtStack
from .replicated_port import (
    DetectorParams,
    PortMode,
    ReplicatedPortOptions,
    ReplicatedPortTable,
)
from .service import FtNode, ReplicaHandle, ReplicatedTcpService, ServerFactory

__all__ = [
    "ACK_CHANNEL_PORT",
    "AckChannelEndpoint",
    "AckChannelMessage",
    "OrderedAckChannelEndpoint",
    "RetransmissionDetector",
    "Heartbeat",
    "HeartbeatDetector",
    "HeartbeatSender",
    "enable_heartbeats",
    "FtConnectionState",
    "FtError",
    "FtPort",
    "FtStack",
    "DetectorParams",
    "PortMode",
    "ReplicatedPortOptions",
    "ReplicatedPortTable",
    "FtNode",
    "ReplicaHandle",
    "ReplicatedTcpService",
    "ServerFactory",
]
