"""High-level orchestration: deploy a fault-tolerant TCP service.

This is the public API a downstream user starts from:

.. code-block:: python

    node_a = FtNode(host_server_a, redirector.ip)
    node_b = FtNode(host_server_b, redirector.ip)
    service = ReplicatedTcpService("192.20.225.20", 80, server_factory)
    service.add_primary(node_a)
    service.add_backup(node_b)

``server_factory`` is called once per replica and must return the
``on_accept`` handler for that replica.  Replica server programs must
be deterministic: every replica sees the same client byte stream and
must produce the same response byte stream (the paper's implicit
requirement for primary/backup output to be interchangeable).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro.hydranet.daemons import HostServerDaemon
from repro.hydranet.host_server import HostServer
from repro.netsim.addressing import IPAddress, as_address
from repro.tcp.options import TcpOptions
from repro.tcp.tcb import TcpConnection

from .ack_channel import AckChannelEndpoint
from .ft_tcp import FtPort, FtStack
from .replicated_port import DetectorParams, PortMode

if TYPE_CHECKING:
    from repro.recovery.manager import RecoveryManager

#: A factory producing the per-replica accept handler.  It receives the
#: replica's host server (for logging / per-replica state) and returns
#: the ``on_accept`` callback.
ServerFactory = Callable[[HostServer], Callable[[TcpConnection], None]]


class FtNode:
    """A host server fully equipped for HydraNet-FT: management daemon,
    acknowledgement-channel endpoint, and ft-TCP stack.

    ``ordered_channel=True`` swaps in the reliable in-order channel the
    paper rejected (ablation A6); all replicas of a service must agree
    on the channel flavour.
    """

    def __init__(
        self,
        host_server: HostServer,
        redirector_ip,
        ordered_channel: bool = False,
        report_ip=None,
    ):
        from .ack_channel import OrderedAckChannelEndpoint

        self.host_server = host_server
        self.daemon = HostServerDaemon(host_server, redirector_ip, report_ip=report_ip)
        endpoint_cls = OrderedAckChannelEndpoint if ordered_channel else AckChannelEndpoint
        self.ack_endpoint = endpoint_cls(host_server)
        self.stack = FtStack(host_server, self.ack_endpoint, self.daemon)

    @property
    def name(self) -> str:
        return self.host_server.name

    @property
    def ip(self) -> IPAddress:
        return self.host_server.ip


@dataclass
class ReplicaHandle:
    node: FtNode
    ft_port: FtPort

    @property
    def mode(self) -> PortMode:
        return self.ft_port.mode

    @property
    def is_primary(self) -> bool:
        return self.ft_port.is_primary


class ReplicatedTcpService:
    """One fault-tolerant service access point and its replicas."""

    def __init__(
        self,
        service_ip,
        port: int,
        server_factory: ServerFactory,
        detector: Optional[DetectorParams] = None,
        tcp_options: Optional[TcpOptions] = None,
        authority_ip=None,
        strategy: str = "chain",
    ):
        self.service_ip = as_address(service_ip)
        self.port = port
        self.server_factory = server_factory
        self.detector = detector or DetectorParams()
        self.tcp_options = tcp_options
        #: Replication backend every replica of this service runs
        #: (DESIGN.md §15); all replicas must agree on it.
        self.strategy = strategy
        #: Mesh deployments: the redirector owning this service's chain
        #: (``None`` = every node's default redirector, the flat case).
        self.authority_ip = as_address(authority_ip) if authority_ip is not None else None
        self.replicas: list[ReplicaHandle] = []
        #: Set by an attached :class:`~repro.recovery.RecoveryManager`;
        #: when present, ``recommission`` runs the live-join protocol
        #: (in-flight connections included) instead of the cold path.
        self.recovery: Optional["RecoveryManager"] = None

    def add_primary(self, node: FtNode) -> ReplicaHandle:
        return self._add(node, PortMode.PRIMARY)

    def add_backup(self, node: FtNode) -> ReplicaHandle:
        return self._add(node, PortMode.BACKUP)

    def _add(self, node: FtNode, mode: PortMode) -> ReplicaHandle:
        if self.authority_ip is not None:
            node.daemon.set_service_authority(
                self.service_ip, self.port, self.authority_ip
            )
        node.stack.setportopt(self.port, mode, self.detector, self.strategy)
        on_accept = self.server_factory(node.host_server)
        ft_port = node.stack.listen_replicated(
            self.service_ip, self.port, on_accept, self.tcp_options
        )
        handle = ReplicaHandle(node, ft_port)
        ft_port.on_demoted = lambda: self._on_replica_demoted(ft_port)
        self.replicas.append(handle)
        return handle

    def provision_joiner(self, node: FtNode) -> ReplicaHandle:
        """Bind the service's server program on ``node`` as a *live
        joiner* (recovery subsystem): the port comes up with a muted
        failure detector and without registering at the redirector —
        it catches up in-flight connections via state transfer first,
        and only enters the multicast set at the chain splice."""
        if self.authority_ip is not None:
            node.daemon.set_service_authority(
                self.service_ip, self.port, self.authority_ip
            )
        node.stack.setportopt(self.port, PortMode.BACKUP, self.detector, self.strategy)
        on_accept = self.server_factory(node.host_server)
        ft_port = node.stack.listen_replicated(
            self.service_ip, self.port, on_accept, self.tcp_options, joining=True
        )
        handle = ReplicaHandle(node, ft_port)
        ft_port.on_demoted = lambda: self._on_replica_demoted(ft_port)
        self.replicas.append(handle)
        return handle

    def _on_replica_demoted(self, ft_port: FtPort) -> None:
        """A Demote fail-stopped one of our replicas (it was acting on
        a stale view, DESIGN.md §9).  With a recovery manager attached
        the node is wiped and pooled — the manager's control loop then
        drafts it back in as a backup through the live-join path,
        restoring the target degree.  Without one the handle simply
        stays shut down (the operator can ``recommission`` it)."""
        handle = next((h for h in self.replicas if h.ft_port is ft_port), None)
        if handle is None:
            return
        if self.recovery is not None and not handle.node.host_server.crashed:
            self.recovery.return_spare(handle.node)

    def remove_replica(self, handle: ReplicaHandle, reason: str = "voluntary") -> None:
        """Voluntary departure (paper §4.4 deletion procedures)."""
        handle.node.daemon.unregister(self.service_ip, self.port, reason)
        handle.ft_port.shutdown()
        if handle in self.replicas:
            self.replicas.remove(handle)

    def recommission(self, handle: ReplicaHandle) -> Optional[ReplicaHandle]:
        """Re-commission a recovered server (EXTENSION — the paper's §6
        lists this as future work).

        The recovered replica's pre-failure TCP state is discarded
        (connections it held are stale and are killed silently, never
        resumed).  Without a recovery manager attached this is the
        *cold* path: the node re-joins as the last backup and
        participates only in connections opened from now on — existing
        connections do not gate on it (per-connection chain membership,
        DESIGN.md §5b).  With a :class:`~repro.recovery.RecoveryManager`
        attached, the node instead runs the live-join protocol and also
        catches up in-flight connections (may return ``None`` if the
        manager pooled the node for a later join).
        """
        node = handle.node
        if node.host_server.crashed:
            raise RuntimeError(f"{node.name} is still crashed; recover() it first")
        node.stack.decommission(self.service_ip, self.port)
        if handle in self.replicas:
            self.replicas.remove(handle)
        if self.recovery is not None:
            return self.recovery.recommission(node)
        return self.add_backup(node)

    @property
    def primary(self) -> Optional[ReplicaHandle]:
        """The live primary (a crashed ex-primary never learns it was
        removed, so crashed hosts are excluded here)."""
        for handle in self.replicas:
            if (
                handle.is_primary
                and not handle.ft_port.shut_down
                and not handle.node.host_server.crashed
            ):
                return handle
        return None

    def status(self) -> str:
        """Operator-style report of the replica set and its chain."""
        lines = [
            f"service {self.service_ip}:{self.port} "
            f"({len(self.replicas)} replicas, detector threshold "
            f"{self.detector.threshold})"
        ]
        for handle in self.replicas:
            port = handle.ft_port
            host = handle.node.host_server
            if host.crashed:
                state = "CRASHED"
            elif port.shut_down:
                state = "shut down"
            elif port.joining:
                state = "joining"
            else:
                state = "primary" if port.is_primary else "backup"
            chain = []
            if port.predecessor_ip is not None:
                chain.append(f"pred={port.predecessor_ip}")
            chain.append(f"succ={'yes' if port.has_successor else 'no'}")
            lines.append(
                f"  {host.name:12s} {state:10s} "
                f"conns={len(port.states)} "
                f"promotions={port.promotions} "
                f"detector_reports={port.detector.reports} "
                f"[{' '.join(chain)}]"
            )
        return "\n".join(lines)

    @property
    def live_replicas(self) -> list[ReplicaHandle]:
        """Replicas actually serving: a joiner still catching up is
        excluded (it is not in the multicast set yet)."""
        return [
            h
            for h in self.replicas
            if not h.ft_port.shut_down
            and not h.ft_port.joining
            and not h.node.host_server.crashed
        ]
