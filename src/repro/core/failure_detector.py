"""The low-latency failure estimator (paper §4.3).

"If a server fails to receive a packet, the flow control loop is
broken, and the client re-transmits. ... Repeated re-transmissions are
detected at the servers.  After some number of re-transmissions have
been detected, any server can initiate a reconfiguration of the set of
replicas."

The detector counts client retransmissions observed by the ft-TCP
stack within a sliding window; crossing the configured threshold fires
a report (rate-limited by a cooldown).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.netsim.simulator import Simulator

from .replicated_port import DetectorParams


class RetransmissionDetector:
    """Per-replicated-port failure estimator."""

    def __init__(
        self,
        sim: Simulator,
        params: DetectorParams,
        on_failure: Callable[[], None],
    ):
        self.sim = sim
        self.params = params
        self.on_failure = on_failure
        self._events: deque[float] = deque()
        self._last_report: Optional[float] = None
        self.observations = 0
        self.reports = 0

    def observe_retransmission(self) -> None:
        """Feed one observed client retransmission."""
        now = self.sim.now
        self.observations += 1
        self._events.append(now)
        cutoff = now - self.params.window
        while self._events and self._events[0] < cutoff:
            self._events.popleft()
        if len(self._events) < self.params.threshold:
            return
        if (
            self._last_report is not None
            and now - self._last_report < self.params.cooldown
        ):
            return
        self._last_report = now
        self._events.clear()
        self.reports += 1
        self.on_failure()

    @property
    def last_report_at(self) -> Optional[float]:
        """Sim time of the most recent report (None before the first).
        Experiments use this to place detection on the fail-over
        timeline; the promotion handshake is paced by the same cooldown
        that rate-limits reports."""
        return self._last_report

    def reset(self) -> None:
        """Forget all history.  This includes the report cooldown: a
        reset detector is factory-fresh, and its first post-reset
        threshold crossing must report immediately (a stale cooldown
        from before the reset would suppress it)."""
        self._events.clear()
        self._last_report = None
