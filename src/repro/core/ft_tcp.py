"""The ft-TCP stack (paper §4.1, §4.3): replica-side machinery that
turns an ordinary TCP listener into one replica of a fault-tolerant
service.

Per replicated port this module maintains:

* the *deposit gate* — server ``Si`` deposits byte ``k`` into the
  socket buffer only after the successor ``S(i+1)`` reported an
  acknowledgement number beyond ``k`` (the last backup deposits
  immediately);
* the *output gate* — ``Si`` sends byte ``k`` of the response only
  after the successor reported a sequence number ≥ ``k``;
* the *output filter* — a backup's outgoing packets are never sent to
  the client; their SEQUENCE/ACKNOWLEDGEMENT numbers travel up the
  acknowledgement channel and the packet is discarded;
* the *failure estimator* — repeated client retransmissions observed
  at the port trigger a failure report to the redirector;
* *chain updates* — the management protocol re-chains replicas and
  promotes a backup to primary during fail-over.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.netsim.addressing import IPAddress, as_address
from repro.netsim.packet import TCPSegment
from repro.netsim.simulator import Timer
from repro.tcp.seqnum import seq_add, seq_diff
from repro.tcp.stack import Listener, deterministic_iss
from repro.tcp.tcb import TcpConnection, TcpState

from .ack_channel import AckChannelEndpoint, AckChannelMessage
from .failure_detector import RetransmissionDetector
from .replicated_port import DetectorParams, PortMode, ReplicatedPortTable

if TYPE_CHECKING:
    from repro.hydranet.daemons import HostServerDaemon
    from repro.hydranet.host_server import HostServer
    from repro.hydranet.mgmt import ChainUpdate
    from repro.tcp.options import TcpOptions

ClientKey = tuple[IPAddress, int]


class FtError(RuntimeError):
    pass


class FtConnectionState:
    """Per-connection fault-tolerance state on one replica."""

    def __init__(self, port: "FtPort", conn: TcpConnection, gated: bool):
        self.port = port
        self.conn = conn
        self.created_at = port.sim.now
        #: Whether this replica waits on a successor for this
        #: connection.  Set at connection creation from the chain
        #: layout; can only be cleared (successor removed) — a backup
        #: added mid-connection has no state for it and must not gate us.
        self.gated = gated
        # Successor progress in stream offsets.
        self.successor_sent_upto = 0
        self.successor_deposited_upto = 0
        self.successor_ip: Optional[IPAddress] = None
        self.last_successor_msg: Optional[float] = None
        # Messages that arrived before the handshake fixed IRS.
        self._pending_raw: list[AckChannelMessage] = []

    # -- gates installed into the TCB ---------------------------------

    def deposit_ceiling(self) -> Optional[int]:
        self._drain_pending()
        if not self.gated:
            return None
        return self.successor_deposited_upto

    def transmit_ceiling(self) -> Optional[int]:
        self._drain_pending()
        if not self.gated:
            return None
        return self.successor_sent_upto

    # -- ack-channel input ----------------------------------------------

    def apply(self, message: AckChannelMessage, sender: IPAddress) -> None:
        self.successor_ip = sender
        self.last_successor_msg = self.port.sim.now
        if self.conn.irs is None:
            if len(self._pending_raw) < 16:
                self._pending_raw.append(message)
            return
        self._apply_wire(message.seq_next, message.ack)

    def _apply_wire(self, seq_next: int, ack: int) -> None:
        conn = self.conn
        sent = seq_diff(seq_next, seq_add(conn.iss, 1))
        deposited = seq_diff(ack, seq_add(conn.irs, 1))
        if sent > self.successor_sent_upto:
            self.successor_sent_upto = sent
        if deposited > self.successor_deposited_upto:
            self.successor_deposited_upto = deposited

    def _drain_pending(self) -> None:
        if self._pending_raw and self.conn.irs is not None:
            pending, self._pending_raw = self._pending_raw, []
            for message in pending:
                self._apply_wire(message.seq_next, message.ack)

    def blocked_on_successor(self) -> bool:
        """True when this connection cannot make progress until the
        successor reports on the acknowledgement channel."""
        if not self.gated:
            return False
        conn = self.conn
        reasm = conn.reassembler
        if (
            reasm.in_order_end > reasm.take_point
            and self.successor_deposited_upto <= reasm.take_point
        ):
            return True  # deposit-gated data is waiting
        if (
            conn.send_buffer.end > conn.snd_nxt
            and self.successor_sent_upto <= conn.snd_nxt
        ):
            return True  # output-gated data is waiting
        if (
            conn.fin_queued
            and not conn.fin_sent
            and self.successor_sent_upto <= conn.send_buffer.end
        ):
            return True  # FIN is gated
        return False

    def successor_silence(self) -> float:
        """Seconds since the successor was last heard for this
        connection (since creation if never heard)."""
        last = self.last_successor_msg
        if last is None:
            last = self.created_at
        return self.port.sim.now - last


class FtPort:
    """One replicated TCP port on one host server."""

    def __init__(
        self,
        host_server: "HostServer",
        service_ip: IPAddress,
        port: int,
        mode: PortMode,
        detector_params: DetectorParams,
        ack_endpoint: AckChannelEndpoint,
        daemon: Optional["HostServerDaemon"] = None,
    ):
        self.host_server = host_server
        self.sim = host_server.sim
        self.service_ip = as_address(service_ip)
        self.port = port
        self.mode = mode
        self.detector_params = detector_params
        self.ack_endpoint = ack_endpoint
        self.daemon = daemon
        self.listener: Optional[Listener] = None
        self.predecessor_ip: Optional[IPAddress] = None
        #: Until the first chain update arrives a lone primary has no
        #: successor and a backup pessimistically assumes it has none
        #: either (it is last in the chain until told otherwise).
        self.has_successor = False
        self.states: dict[ClientKey, FtConnectionState] = {}
        self._pending_msgs: dict[ClientKey, list[tuple[AckChannelMessage, IPAddress]]] = {}
        self._unknown_last_seq: dict[tuple, int] = {}
        self.detector = RetransmissionDetector(
            self.sim, detector_params, self._report_failure
        )
        self.shut_down = False
        self.promotions = 0
        self.chain_updates_applied = 0
        self._last_liveness_report: Optional[float] = None
        ack_endpoint.register(self.service_ip, port, self._on_ack_channel)
        # Active liveness check: a failure partitions the acknowledgement
        # channel (paper §4.4); when connections are blocked on a silent
        # successor — a state no retransmission would ever signal, e.g.
        # a server-push stream with a dead backup — report it.
        self._liveness_timer = Timer(self.sim, self._liveness_check)
        self._liveness_period = max(0.25, detector_params.successor_quiet / 2)
        self._liveness_timer.start(self._liveness_period)

    @property
    def is_primary(self) -> bool:
        return self.mode == PortMode.PRIMARY

    # -- binding ----------------------------------------------------------

    def bind(
        self,
        on_accept: Callable[[TcpConnection], None],
        tcp_options: Optional["TcpOptions"] = None,
    ) -> Listener:
        """Create the listener for the replicated port (the server
        program's ``bind()``)."""
        if self.listener is not None:
            raise FtError(f"port {self.port} already bound")
        vhost = self.host_server.v_host(self.service_ip)
        vhost.record_bind("tcp", self.port)
        listener = self.host_server.node.listen(
            self.port, ip=self.service_ip, options=tcp_options
        )
        listener.iss_policy = deterministic_iss
        listener.silent_on_unknown = True
        # Repeated segments for a connection this replica has no state
        # for (it joined mid-connection and the replicas that did know
        # it are gone) are still a failure signal: a client is
        # retransmitting into a service nobody answers.
        listener.on_unknown_segment = self._on_unknown_segment
        listener.configure_connection = self._configure_connection
        listener.on_accept = on_accept
        self.listener = listener
        if self.daemon is not None:
            self.daemon.register(self.service_ip, self.port, self.mode.value)
        return listener

    # -- connection wiring ---------------------------------------------------

    def _configure_connection(self, conn: TcpConnection) -> None:
        if self.shut_down:
            return
        key = (conn.remote_ip, conn.remote_port)
        state = FtConnectionState(self, conn, gated=self.has_successor)
        self.states[key] = state
        conn.deposit_limit = state.deposit_ceiling
        conn.transmit_limit = state.transmit_ceiling
        conn.output_filter = lambda segment: self._filter_output(state, segment)
        conn.on_retransmission_observed = (
            lambda segment: self._on_retransmission(state, segment)
        )
        # A replica's own retransmissions are the failure signal for
        # server-push traffic: with the primary dead, nothing ACKs the
        # stream, so every live replica's TCP starts retransmitting.
        conn.on_retransmit = lambda: self._on_retransmission(state, None)
        for message, sender in self._pending_msgs.pop(key, []):
            state.apply(message, sender)
        self._prune_states()

    def _prune_states(self) -> None:
        if len(self.states) > 256:
            self.states = {
                key: st
                for key, st in self.states.items()
                if st.conn.state != TcpState.CLOSED
            }

    # -- output path (paper: backups strip flow-control info and discard) ----

    def _filter_output(self, state: FtConnectionState, segment: TCPSegment) -> bool:
        if self.shut_down:
            return True  # a removed replica is silent
        if self.is_primary:
            return False  # the primary talks to the client normally
        message = AckChannelMessage(
            service_ip=self.service_ip,
            service_port=self.port,
            client_ip=state.conn.remote_ip,
            client_port=state.conn.remote_port,
            seq_next=seq_add(segment.seq, segment.seq_span),
            ack=segment.ack if segment.has_ack else 0,
        )
        if self.predecessor_ip is not None:
            self.ack_endpoint.send(message, self.predecessor_ip)
        return True

    # -- ack-channel input -----------------------------------------------------

    def _on_ack_channel(self, message: AckChannelMessage, sender: IPAddress) -> None:
        key = (message.client_ip, message.client_port)
        state = self.states.get(key)
        if state is None:
            pending = self._pending_msgs.setdefault(key, [])
            if len(pending) < 16 and len(self._pending_msgs) < 1024:
                pending.append((message, sender))
            return
        state.apply(message, sender)
        state.conn.gates_changed()

    # -- failure detection --------------------------------------------------------

    def _on_retransmission(self, state: FtConnectionState, segment: TCPSegment) -> None:
        if self.shut_down:
            return
        self.detector.observe_retransmission()

    def _on_unknown_segment(self, packet, segment: TCPSegment) -> None:
        """Unknown-connection traffic flows past a mid-stream joiner all
        the time while the primary serves it; only a REPEATED sequence
        number — a client retransmission into the void — is a failure
        signal."""
        if self.shut_down:
            return
        key = (packet.src, segment.src_port)
        last = self._unknown_last_seq.get(key)
        self._unknown_last_seq[key] = segment.seq
        if len(self._unknown_last_seq) > 512:
            self._unknown_last_seq.clear()
        if last is not None and last == segment.seq and segment.seq_span > 0:
            self.detector.observe_retransmission()

    def _report_failure(self) -> None:
        if self.daemon is None or self.shut_down or self.host_server.crashed:
            return
        suspects = []
        suspect = self._quiet_successor()
        if suspect is not None:
            suspects.append(suspect)
        self.daemon.report_failure(self.service_ip, self.port, suspects)

    def _liveness_check(self) -> None:
        if self.shut_down or self.host_server.crashed:
            return
        self._liveness_timer.start(self._liveness_period)
        if not self.has_successor or self.daemon is None:
            return
        quiet = self.detector_params.successor_quiet
        now = self.sim.now
        if (
            self._last_liveness_report is not None
            and now - self._last_liveness_report < self.detector_params.cooldown
        ):
            return
        for state in self.states.values():
            if (
                state.conn.state != TcpState.CLOSED
                and state.blocked_on_successor()
                and state.successor_silence() > quiet
            ):
                self._last_liveness_report = now
                suspects = [state.successor_ip] if state.successor_ip else []
                self.daemon.report_failure(self.service_ip, self.port, suspects)
                return

    def _quiet_successor(self) -> Optional[IPAddress]:
        """Name the successor as a suspect if it has gone quiet on the
        acknowledgement channel while connections are gated on it."""
        if not self.has_successor:
            return None
        quiet = self.detector_params.successor_quiet
        for state in self.states.values():
            if not state.gated or state.successor_ip is None:
                continue
            if (
                state.last_successor_msg is not None
                and self.sim.now - state.last_successor_msg > quiet
            ):
                return state.successor_ip
        return None

    # -- reconfiguration -------------------------------------------------------------

    def apply_chain_update(self, update: "ChainUpdate") -> None:
        """React to the redirector's view of the chain (paper §4.4)."""
        if self.shut_down:
            return
        self.chain_updates_applied += 1
        self.predecessor_ip = update.predecessor_ip
        had_successor = self.has_successor
        self.has_successor = update.has_successor
        promoted = update.is_primary and not self.is_primary
        if promoted:
            self.mode = PortMode.PRIMARY
            self.promotions += 1
        if had_successor and not self.has_successor:
            # Our successor left the set: stop gating existing
            # connections on it.
            for state in self.states.values():
                state.gated = False
        for state in list(self.states.values()):
            if promoted:
                state.conn.kick()
            else:
                state.conn.gates_changed()

    def shutdown(self) -> None:
        """Fail-stop: removed from the replica set, go silent."""
        if self.shut_down:
            return
        self.shut_down = True
        self._liveness_timer.stop()
        if self.listener is not None:
            # Stay bound but refuse (silently): a closed listener would
            # let the stack RST the service's clients, breaking the
            # required fail-stop silence.
            self.listener.accept_new = False
            self.listener.on_accept = None
        self.ack_endpoint.unregister(self.service_ip, self.port)
        for state in list(self.states.values()):
            state.conn.kill_silently()
        self.states.clear()


class FtStack:
    """All replicated ports of one host server, plus daemon wiring."""

    def __init__(
        self,
        host_server: "HostServer",
        ack_endpoint: Optional[AckChannelEndpoint] = None,
        daemon: Optional["HostServerDaemon"] = None,
    ):
        self.host_server = host_server
        self.ack_endpoint = ack_endpoint or AckChannelEndpoint(host_server)
        self.daemon = daemon
        self.port_table = ReplicatedPortTable()
        self.ports: dict[tuple[IPAddress, int], FtPort] = {}
        if daemon is not None:
            daemon.on_chain_update = self._dispatch_chain_update
            daemon.on_shutdown = self._dispatch_shutdown

    def setportopt(
        self,
        port: int,
        mode: PortMode | str,
        detector: DetectorParams | None = None,
    ) -> None:
        """The ``setportopt(port, mode, detector-parameters)`` call."""
        self.port_table.setportopt(port, mode, detector)

    def listen_replicated(
        self,
        service_ip,
        port: int,
        on_accept: Callable[[TcpConnection], None],
        tcp_options: Optional["TcpOptions"] = None,
    ) -> FtPort:
        """Bind a server program to a replicated port under the virtual
        host of ``service_ip``.  ``setportopt`` must have been called."""
        options = self.port_table.get(port)
        if options is None:
            raise FtError(f"port {port} is not replicated (call setportopt first)")
        key = (as_address(service_ip), port)
        if key in self.ports:
            raise FtError(f"service {key[0]}:{port} already bound")
        ft_port = FtPort(
            self.host_server,
            key[0],
            port,
            options.mode,
            options.detector,
            self.ack_endpoint,
            self.daemon,
        )
        ft_port.bind(on_accept, tcp_options)
        self.ports[key] = ft_port
        return ft_port

    def decommission(self, service_ip, port: int) -> None:
        """Tear down a replica's local state for a service (used when a
        recovered server re-joins: its pre-crash TCP state is stale and
        must never reach a client)."""
        key = (as_address(service_ip), port)
        ft_port = self.ports.pop(key, None)
        if ft_port is not None:
            ft_port.shutdown()
            if ft_port.listener is not None:
                # Free the binding for the replacement FtPort.
                ft_port.listener.close()
        self.port_table.remove(port)

    def _dispatch_chain_update(self, update: "ChainUpdate") -> None:
        ft_port = self.ports.get((as_address(update.service_ip), update.port))
        if ft_port is not None:
            ft_port.apply_chain_update(update)

    def _dispatch_shutdown(self, message) -> None:
        key = (as_address(message.service_ip), message.port)
        ft_port = self.ports.get(key)
        if ft_port is not None:
            ft_port.shutdown()
