"""The ft-TCP stack (paper §4.1, §4.3): replica-side machinery that
turns an ordinary TCP listener into one replica of a fault-tolerant
service.

Per replicated port this module maintains:

* the *deposit gate* — server ``Si`` deposits byte ``k`` into the
  socket buffer only after the successor ``S(i+1)`` reported an
  acknowledgement number beyond ``k`` (the last backup deposits
  immediately);
* the *output gate* — ``Si`` sends byte ``k`` of the response only
  after the successor reported a sequence number ≥ ``k``;
* the *output filter* — a backup's outgoing packets are never sent to
  the client; their SEQUENCE/ACKNOWLEDGEMENT numbers travel up the
  acknowledgement channel and the packet is discarded;
* the *failure estimator* — repeated client retransmissions observed
  at the port trigger a failure report to the redirector;
* *chain updates* — the management protocol re-chains replicas and
  promotes a backup to primary during fail-over;
* the *catch-up log* and *chain splice* — hooks for the recovery
  subsystem (EXTENSION, DESIGN.md §8): every connection records the
  client byte stream it deposited so a replacement replica can be
  brought up to speed live, and a two-phase splice extends the chain
  with the joiner as the new last backup.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Callable, Optional

from repro.netsim.addressing import IPAddress, as_address
from repro.netsim.packet import TCPSegment
from repro.netsim.simulator import Timer
from repro.hydranet.mgmt import ConnSnapshot, StateSnapshot
from repro.tcp.seqnum import seq_add, seq_diff
from repro.tcp.stack import Listener, deterministic_iss
from repro.tcp.tcb import TcpConnection, TcpState

from repro.replication import create_strategy

from .ack_channel import AckChannelEndpoint, AckChannelMessage
from .failure_detector import RetransmissionDetector
from .replicated_port import DetectorParams, PortMode, ReplicatedPortTable

if TYPE_CHECKING:
    from repro.hydranet.daemons import HostServerDaemon
    from repro.hydranet.host_server import HostServer
    from repro.hydranet.mgmt import (
        ChainSplice,
        ChainUpdate,
        Demote,
        JoinRequest,
        PromotionGrant,
    )
    from repro.tcp.options import TcpOptions

ClientKey = tuple[IPAddress, int]

#: Per-connection cap on the catch-up log.  A connection whose client
#: stream outgrows it becomes untransferable (it is skipped in
#: snapshots and keeps running with whatever redundancy it has).
DEFAULT_CATCHUP_LOG_LIMIT = 4 * 1024 * 1024

#: Stream bytes per base-transfer piece (a handful of IP fragments on
#: an era 1500-byte-MTU link).
DEFAULT_CATCHUP_CHUNK = 4096

#: Base-transfer pieces kept in flight at once (ack-clocked): enough to
#: keep the pipe busy across one mgmt RTT, small enough that a burst
#: can never overflow a bottleneck drop-tail queue.
CATCHUP_WINDOW = 4

#: Watermark-plausibility slack (DESIGN.md §14).  A successor's honest
#: progress can lead this replica's local view by in-flight window
#: amounts (at most a receive window ≈ 64 kB each way); a claim beyond
#: local knowledge plus this slack is provably impossible and treated
#: as lying evidence.  Generous enough that no honest skew ever trips
#: it, small enough that a meaningful lie (such as a 1 MB inflation)
#: cannot hide inside it.
PROGRESS_SLACK = 256 * 1024


class FtError(RuntimeError):
    pass


class CatchupLog:
    """The client byte stream deposited on one connection, retained so
    a joining replica can replay it through the deterministic server
    program (EXTENSION — recovery subsystem, DESIGN.md §8).

    Deposits arrive in order starting at stream offset 0, so the log is
    a list of contiguous chunks.  ``size`` is the next expected offset;
    a hole (hook attached late) or exceeding ``limit`` marks the log
    ``truncated`` and frees the memory — the connection then cannot be
    transferred."""

    def __init__(self, limit: int = DEFAULT_CATCHUP_LOG_LIMIT):
        self.limit = limit
        self.size = 0
        self.truncated = False
        self._chunks: list[bytes] = []

    def record(self, start: int, data: bytes) -> None:
        if self.truncated:
            return
        if start != self.size or self.size + len(data) > self.limit:
            self.truncated = True
            self._chunks.clear()
            return
        self._chunks.append(data)
        self.size += len(data)

    def contents(self) -> bytes:
        return b"".join(self._chunks)


class FtConnectionState:
    """Per-connection fault-tolerance state on one replica."""

    #: Class-level so the mutation harness can disable watermark
    #: plausibility checking and prove ``ProgressTruthfulness`` notices
    #: (tests/invariants/test_mutation).
    validate_progress = True

    def __init__(self, port: "FtPort", conn: TcpConnection, gated: bool):
        self.port = port
        self.conn = conn
        self.created_at = port.sim.now
        #: Whether this replica waits on a successor for this
        #: connection.  Set at connection creation from the chain
        #: layout; cleared when the successor is removed — a backup
        #: added mid-connection has no state for it and must not gate
        #: us.  The one way it turns back on is a chain splice: the
        #: joiner then provably holds live state for this connection.
        self.gated = gated
        # Successor progress in stream offsets.
        self.successor_sent_upto = 0
        self.successor_deposited_upto = 0
        self.successor_ip: Optional[IPAddress] = None
        self.last_successor_msg: Optional[float] = None
        #: When this replica last reported its own progress upstream
        #: (segment-driven or announced) — the keepalive only fills
        #: gaps the data path leaves.
        self.last_report_sent: Optional[float] = None
        #: Highest epoch seen from the *current* successor — progress
        #: reports stamped with an older epoch are stale-view traffic
        #: (reordered or fenced) and are dropped.  Reset when the
        #: successor changes: epochs are only comparable per sender.
        self._successor_epoch = 0
        # Messages that arrived before the handshake fixed IRS.
        self._pending_raw: list[AckChannelMessage] = []
        #: Client stream retained for live joins (recovery subsystem).
        self.catchup_log = CatchupLog(port.catchup_log_limit)
        #: Strategy-private per-connection state (DESIGN.md §15) —
        #: ``None`` for backends that keep everything in the effective
        #: watermark fields above.
        self.repl = port.strategy.connection_state(self)

    # -- recovery hooks -------------------------------------------------

    def record_deposit(self, start: int, data: bytes) -> None:
        """TCB deposit hook: log the client bytes and forward them to
        any replica currently catching up on this connection."""
        invariants = self.port.sim.invariants
        if invariants is not None:
            invariants.on_deposit(self, start, data)
        self.catchup_log.record(start, data)
        self.port._forward_delta(self, start, data)

    def announce(self) -> None:
        """Report this replica's current progress on the
        acknowledgement channel unprompted (a joiner does this right
        after the chain splice so its new predecessor can open its
        gates without waiting for fresh client traffic)."""
        conn = self.conn
        port = self.port
        if port.predecessor_ip is None or conn.irs is None:
            return
        message = AckChannelMessage(
            service_ip=port.service_ip,
            service_port=port.port,
            client_ip=conn.remote_ip,
            client_port=conn.remote_port,
            seq_next=seq_add(conn.iss, 1 + conn.snd_nxt),
            ack=seq_add(conn.irs, 1 + conn.ack_point),
            epoch=port.epoch,
        )
        self.last_report_sent = port.sim.now
        port.ack_endpoint.send(message, port.predecessor_ip)

    # -- gates installed into the TCB ---------------------------------
    # These remain the TCB's (and the mutation harness's) entry points;
    # the ceiling computation itself belongs to the replication
    # strategy (DESIGN.md §15).

    def deposit_ceiling(self) -> Optional[int]:
        return self.port.strategy.deposit_ceiling(self)

    def transmit_ceiling(self) -> Optional[int]:
        return self.port.strategy.transmit_ceiling(self)

    # -- ack-channel input ----------------------------------------------

    def apply(self, message: AckChannelMessage, sender: IPAddress) -> None:
        self.port.strategy.on_report(self, message, sender)

    def _apply_wire(self, seq_next: int, ack: int, epoch: int = 0) -> None:
        conn = self.conn
        port = self.port
        if epoch < self._successor_epoch:
            # A report from a view the successor itself has already
            # left (delayed/re-queued in flight): acting on it could
            # regress our notion of a *different* chain's progress.
            port.stale_epoch_dropped += 1
            return
        self._successor_epoch = epoch
        sent = seq_diff(seq_next, seq_add(conn.iss, 1))
        deposited = seq_diff(ack, seq_add(conn.irs, 1))
        if self.validate_progress and not self._progress_plausible(sent, deposited):
            # The successor claims progress beyond what the client can
            # possibly have produced: lying evidence, never apply it.
            port._note_lie_evidence(self)
            return
        invariants = port.sim.invariants
        if invariants is not None:
            # Accepted reports only: the monitors' successor view must
            # mirror what this replica actually acts on.
            invariants.on_successor_report(self, seq_next, ack)
        if sent > self.successor_sent_upto:
            self.successor_sent_upto = sent
        if deposited > self.successor_deposited_upto:
            self.successor_deposited_upto = deposited

    def _progress_plausible(self, sent: int, deposited: int) -> bool:
        """Bounded-plausibility check on a successor's claimed progress
        (DESIGN.md §14).  The successor deposits the same client stream
        we see and computes the same deterministic response, so neither
        watermark can honestly lead our local state by more than
        in-flight window amounts — ``PROGRESS_SLACK`` over-approximates
        those.  Regressions need no check: the monotonic-max update
        already ignores them."""
        conn = self.conn
        if deposited > conn.reassembler.in_order_end + PROGRESS_SLACK:
            return False
        if sent > conn.send_buffer.end + PROGRESS_SLACK:
            return False
        return True

    def _drain_pending(self) -> None:
        if self._pending_raw and self.conn.irs is not None:
            pending, self._pending_raw = self._pending_raw, []
            for message in pending:
                self._apply_wire(message.seq_next, message.ack, message.epoch)

    def blocked_on_successor(self) -> bool:
        """True when this connection cannot make progress until the
        successor reports on the acknowledgement channel."""
        if not self.gated:
            return False
        conn = self.conn
        reasm = conn.reassembler
        if (
            reasm.in_order_end > reasm.take_point
            and self.successor_deposited_upto <= reasm.take_point
        ):
            return True  # deposit-gated data is waiting
        if (
            conn.send_buffer.end > conn.snd_nxt
            and self.successor_sent_upto <= conn.snd_nxt
        ):
            return True  # output-gated data is waiting
        if (
            conn.fin_queued
            and not conn.fin_sent
            and self.successor_sent_upto <= conn.send_buffer.end
        ):
            return True  # FIN is gated
        return False

    def successor_silence(self) -> float:
        """Seconds since the successor was last heard for this
        connection (since creation if never heard)."""
        last = self.last_successor_msg
        if last is None:
            last = self.created_at
        return self.port.sim.now - last


class FtPort:
    """One replicated TCP port on one host server."""

    def __init__(
        self,
        host_server: "HostServer",
        service_ip: IPAddress,
        port: int,
        mode: PortMode,
        detector_params: DetectorParams,
        ack_endpoint: AckChannelEndpoint,
        daemon: Optional["HostServerDaemon"] = None,
        strategy: str = "chain",
    ):
        self.host_server = host_server
        self.sim = host_server.sim
        self.service_ip = as_address(service_ip)
        self.port = port
        self.mode = mode
        self.detector_params = detector_params
        self.ack_endpoint = ack_endpoint
        self.daemon = daemon
        #: Replication backend (DESIGN.md §15): how deposits/output are
        #: gated, how replica progress is folded in, and whom a quiet
        #: acknowledgement channel incriminates.
        self.strategy = create_strategy(strategy, self)
        self.listener: Optional[Listener] = None
        self.predecessor_ip: Optional[IPAddress] = None
        #: Until the first chain update arrives a lone primary has no
        #: successor and a backup pessimistically assumes it has none
        #: either (it is last in the chain until told otherwise).
        self.has_successor = False
        self.states: dict[ClientKey, FtConnectionState] = {}
        self._pending_msgs: dict[ClientKey, list[tuple[AckChannelMessage, IPAddress]]] = {}
        self._unknown_last_seq: dict[tuple, int] = {}
        self.detector = RetransmissionDetector(
            self.sim, detector_params, self._report_failure
        )
        self.shut_down = False
        #: True while this replica is catching up as a live joiner: it
        #: is not in the redirector's multicast set yet, replays the
        #: donor's stream locally, and must not raise failure reports
        #: (its retransmission timers fire with nobody ACKing until the
        #: chain splice).
        self.joining = False
        self.catchup_log_limit = DEFAULT_CATCHUP_LOG_LIMIT
        #: Donor side: a base transfer is shipped in pieces of at most
        #: this many stream bytes so no single datagram's IP fragments
        #: can overrun a bottleneck queue (which would make the message
        #: unreassemblable at any number of retries).
        self.catchup_chunk_size = DEFAULT_CATCHUP_CHUNK
        #: Donor side: joiner ip -> connection keys being fed deltas.
        self._catchup_feeds: dict[IPAddress, set[ClientKey]] = {}
        #: Donor side: joiner ip -> base-transfer pieces not yet sent
        #: (drained ack-clocked, CATCHUP_WINDOW pieces in flight).
        self._catchup_queues: dict[IPAddress, list] = {}
        #: Joiner side: deltas that outran the base snapshot install.
        self._pending_deltas: dict[ClientKey, list[ConnSnapshot]] = {}
        #: Joiner side: per-connection stream length of the base cut —
        #: JoinReady goes out only when every installed connection's
        #: contiguous stream reaches its mark.
        self._catchup_targets: dict[ClientKey, int] = {}
        self._base_installed = False
        self._join_ready_sent = False
        self.snapshots_sent = 0
        self.connections_transferred = 0
        self.catchup_bytes_sent = 0
        self.catchup_bytes_received = 0
        self.promotions = 0
        self.demotions = 0
        self.chain_updates_applied = 0
        self._last_liveness_report: Optional[float] = None
        #: Gray-failure defenses (DESIGN.md §14): implausible progress
        #: reports rejected, stale-epoch reports dropped, and failure
        #: reports raised against a lying or slow-but-alive successor.
        self.implausible_reports = 0
        self.stale_epoch_dropped = 0
        self.lie_reports = 0
        self.degradation_reports = 0
        self._last_lie_report: Optional[float] = None
        self._last_degradation_report: Optional[float] = None
        #: client key -> sim time its connection first stalled on the
        #: successor (degradation mode only; empty otherwise).
        self._blocked_since: dict[ClientKey, float] = {}
        #: client key -> successor watermarks observed when the stall
        #: clock last (re)started.  Any advance resets the clock: a
        #: saturated-but-moving successor is congestion, not failure.
        self._blocked_marks: dict[ClientKey, tuple[int, int]] = {}
        #: View epoch this replica believes it is in (DESIGN.md §9).
        #: The primary stamps it on every client-bound segment; the
        #: redirector fences output stamped with an older epoch.
        self.epoch = 0
        #: (epoch, seq) of the newest chain layout applied — the
        #: reliable mgmt layer is unordered, older layouts are ignored.
        self._chain_stamp: tuple[int, int] = (-1, -1)
        #: Epoch of a promotion awaiting the redirector's grant.  A
        #: backup never enters primary mode without one.
        self._pending_promotion: Optional[int] = None
        #: Service-layer hook fired after a Demote fail-stopped this
        #: replica (the recovery subsystem rejoins the node as backup).
        self.on_demoted: Optional[Callable[[], None]] = None
        ack_endpoint.register(self.service_ip, port, self._on_ack_channel)
        # Active liveness check: a failure partitions the acknowledgement
        # channel (paper §4.4); when connections are blocked on a silent
        # successor — a state no retransmission would ever signal, e.g.
        # a server-push stream with a dead backup — report it.
        self._liveness_timer = Timer(self.sim, self._liveness_check)
        self._liveness_period = max(0.25, detector_params.successor_quiet / 2)
        self._liveness_timer.start(self._liveness_period)
        self.strategy.start()

    @property
    def is_primary(self) -> bool:
        return self.mode == PortMode.PRIMARY

    # -- binding ----------------------------------------------------------

    def bind(
        self,
        on_accept: Callable[[TcpConnection], None],
        tcp_options: Optional["TcpOptions"] = None,
        register: bool = True,
    ) -> Listener:
        """Create the listener for the replicated port (the server
        program's ``bind()``).  A live joiner binds with
        ``register=False``: it must not enter the redirector's
        multicast set (and hence the chain) until its catch-up is
        complete and the recovery manager splices it in."""
        if self.listener is not None:
            raise FtError(f"port {self.port} already bound")
        vhost = self.host_server.v_host(self.service_ip)
        vhost.record_bind("tcp", self.port)
        listener = self.host_server.node.listen(
            self.port, ip=self.service_ip, options=tcp_options
        )
        listener.iss_policy = deterministic_iss
        listener.silent_on_unknown = True
        # Repeated segments for a connection this replica has no state
        # for (it joined mid-connection and the replicas that did know
        # it are gone) are still a failure signal: a client is
        # retransmitting into a service nobody answers.
        listener.on_unknown_segment = self._on_unknown_segment
        listener.configure_connection = self._configure_connection
        listener.on_accept = on_accept
        self.listener = listener
        if self.daemon is not None and register:
            self.daemon.register(
                self.service_ip, self.port, self.mode.value, self.strategy.name
            )
        return listener

    # -- connection wiring ---------------------------------------------------

    def _configure_connection(self, conn: TcpConnection) -> None:
        if self.shut_down:
            return
        key = (conn.remote_ip, conn.remote_port)
        state = FtConnectionState(self, conn, gated=self.has_successor)
        self.states[key] = state
        conn.clamp_future_acks = True
        conn.deposit_limit = state.deposit_ceiling
        conn.transmit_limit = state.transmit_ceiling
        conn.output_filter = lambda segment: self._filter_output(state, segment)
        conn.on_deposit_data = state.record_deposit
        conn.on_retransmission_observed = (
            lambda segment: self._on_retransmission(state, segment)
        )
        # A replica's own retransmissions are the failure signal for
        # server-push traffic: with the primary dead, nothing ACKs the
        # stream, so every live replica's TCP starts retransmitting.
        conn.on_retransmit = lambda: self._on_retransmission(state, None)
        for message, sender in self._pending_msgs.pop(key, []):
            state.apply(message, sender)
        self._prune_states()

    def _prune_states(self) -> None:
        if len(self.states) > 256:
            self.states = {
                key: st
                for key, st in self.states.items()
                if st.conn.state != TcpState.CLOSED
            }

    # -- output path (paper: backups strip flow-control info and discard) ----

    def _filter_output(self, state: FtConnectionState, segment: TCPSegment) -> bool:
        if self.shut_down:
            return True  # a removed replica is silent
        if self.is_primary:
            if self.strategy.suppress_primary_output(state, segment):
                return True
            # The primary talks to the client normally, stamping its
            # view epoch so the redirector can fence stale output.
            segment.epoch = self.epoch
            invariants = self.sim.invariants
            if invariants is not None:
                invariants.on_client_segment(self, state, segment)
            return False
        # A backup's packet never reaches the client; what its flow
        # control fields turn into is the strategy's call (chain and
        # broadcast report to the predecessor, checkpoint stays silent
        # between checkpoint ticks).
        return self.strategy.filter_backup_output(state, segment)

    # -- ack-channel input -----------------------------------------------------

    def _on_ack_channel(self, message: AckChannelMessage, sender: IPAddress) -> None:
        key = (message.client_ip, message.client_port)
        state = self.states.get(key)
        if state is None:
            pending = self._pending_msgs.setdefault(key, [])
            if len(pending) < 16 and len(self._pending_msgs) < 1024:
                pending.append((message, sender))
            return
        state.apply(message, sender)
        state.conn.gates_changed()

    # -- failure detection --------------------------------------------------------

    def _on_retransmission(self, state: FtConnectionState, segment: TCPSegment) -> None:
        if self.shut_down or self.joining:
            # A joiner replaying the donor's stream retransmits into
            # the void until the splice — that is not a failure.
            return
        self.detector.observe_retransmission()

    def _on_unknown_segment(self, packet, segment: TCPSegment) -> None:
        """Unknown-connection traffic flows past a mid-stream joiner all
        the time while the primary serves it; only a REPEATED sequence
        number — a client retransmission into the void — is a failure
        signal."""
        if self.shut_down or self.joining:
            return
        key = (packet.src, segment.src_port)
        last = self._unknown_last_seq.get(key)
        self._unknown_last_seq[key] = segment.seq
        if len(self._unknown_last_seq) > 512:
            self._unknown_last_seq.clear()
        if last is not None and last == segment.seq and segment.seq_span > 0:
            self.detector.observe_retransmission()

    def _report_failure(self) -> None:
        if self.daemon is None or self.shut_down or self.joining:
            return
        if self.host_server.crashed:
            return
        suspects = []
        suspect = self._quiet_successor()
        if suspect is not None:
            suspects.append(suspect)
        self.daemon.report_failure(self.service_ip, self.port, suspects)
        if not self.is_primary and not suspects:
            # Client retransmissions with no quiet successor point
            # upstream — the primary is suspect.  Bid for promotion;
            # primary mode still requires the redirector's grant
            # (split-brain prevention, DESIGN.md §9).  The detector's
            # cooldown paces re-bids if the first round gives up.
            self._request_promotion(
                self._pending_promotion
                if self._pending_promotion is not None
                else self.epoch
            )

    def _note_lie_evidence(
        self, state: FtConnectionState, suspect: Optional[IPAddress] = None
    ) -> None:
        """A successor's progress report failed the plausibility check.
        The report is already discarded; here we escalate: repeated
        lying evidence is reported to the redirector, whose congestion
        rule (several reports against the same suspect inside its
        window) excises the liar via the normal reconfiguration path —
        and once removed, any report the zombie still sends triggers
        the demote fence (DESIGN.md §9)."""
        self.implausible_reports += 1
        if (
            self.daemon is None
            or self.shut_down
            or self.joining
            or self.host_server.crashed
        ):
            return
        if suspect is None:
            suspect = state.successor_ip
        if suspect is None:
            return
        now = self.sim.now
        if (
            self._last_lie_report is not None
            and now - self._last_lie_report < self.detector_params.cooldown
        ):
            return
        self._last_lie_report = now
        self.lie_reports += 1
        # Reported directly (not via _report_failure): lying evidence
        # names a definite suspect and must never double as a
        # promotion bid.
        self.daemon.report_failure(self.service_ip, self.port, [suspect])

    def _liveness_check(self) -> None:
        if self.shut_down or self.host_server.crashed:
            return
        self._liveness_timer.start(self._liveness_period)
        if self.joining:
            return
        if self.detector_params.degradation_timeout is not None:
            self._keepalive_announce()
        if not self.has_successor or self.daemon is None:
            return
        invariants = self.sim.invariants
        if invariants is not None:
            invariants.on_liveness_tick(self)
        quiet = self.detector_params.successor_quiet
        now = self.sim.now
        if self.detector_params.degradation_timeout is not None:
            self._degradation_check(now, quiet)
        if (
            self._last_liveness_report is not None
            and now - self._last_liveness_report < self.detector_params.cooldown
        ):
            return
        for state in self.states.values():
            if (
                state.conn.state != TcpState.CLOSED
                and state.blocked_on_successor()
                and state.successor_silence() > quiet
            ):
                self._last_liveness_report = now
                suspects = [state.successor_ip] if state.successor_ip else []
                self.daemon.report_failure(self.service_ip, self.port, suspects)
                return

    def _keepalive_announce(self) -> None:
        """Backup-side ack-channel keepalive (degradation mode only,
        DESIGN.md §14).  Progress reports are otherwise segment-driven,
        which starves the evidence stream exactly when it matters: a
        primary blocked on a wedged successor stops ACKing the client,
        the client's send window fills, no more segments reach the
        backups — and every replica goes quiet on the channel, making a
        wedged-but-alive successor indistinguishable from a crashed one.
        Announcing current progress each liveness tick (only when the
        data path has been idle that long) keeps honest replicas
        observably alive so the zero-progress degradation criterion —
        and the OutputLiveness monitor — can tell the two apart."""
        if self.predecessor_ip is None:
            return
        now = self.sim.now
        for state in self.states.values():
            if state.conn.state == TcpState.CLOSED:
                continue
            last = state.last_report_sent
            if last is not None and now - last < self._liveness_period:
                continue
            state.announce()

    def _degradation_check(self, now: float, quiet: float) -> None:
        """Graceful degradation (DESIGN.md §14): a successor that keeps
        *talking* on the acknowledgement channel — so the quiet-based
        check never fires — while our output stays blocked on it and its
        watermarks make *zero progress* past ``degradation_timeout`` is
        a wedged or lying gray failure.  The progress requirement is the
        load-shedding guard: a merely slow (or saturated) successor
        still advances ``successor_sent_upto``/``successor_deposited_upto``
        every tick, which resets the stall clock, so honest congestion is
        never excised.  A truly wedged one is reported to the redirector;
        the congestion rule then excises it from the chain (the recovery
        manager's spare pool restores the replication degree via the
        live-join splice)."""
        timeout = self.detector_params.degradation_timeout
        reported = False
        for key, state in self.states.items():
            stalled = (
                state.conn.state != TcpState.CLOSED and state.blocked_on_successor()
            )
            if not stalled:
                self._blocked_since.pop(key, None)
                self._blocked_marks.pop(key, None)
                continue
            marks = (state.successor_sent_upto, state.successor_deposited_upto)
            if self._blocked_marks.get(key) != marks:
                # Watermarks advanced (or first stalled tick): restart
                # the zero-progress clock.
                self._blocked_marks[key] = marks
                self._blocked_since[key] = now
                continue
            since = self._blocked_since.setdefault(key, now)
            if reported or now - since <= timeout:
                continue
            if state.successor_ip is None or state.successor_silence() > quiet:
                continue  # silent successor: the classic path handles it
            if (
                self._last_degradation_report is not None
                and now - self._last_degradation_report < self.detector_params.cooldown
            ):
                continue
            self._last_degradation_report = now
            self.degradation_reports += 1
            self.daemon.report_failure(
                self.service_ip, self.port, [state.successor_ip]
            )
            reported = True

    def _quiet_successor(self) -> Optional[IPAddress]:
        """Name a replica as a suspect if it has gone quiet on the
        acknowledgement channel while connections are gated on it
        (which replica that is — the chain successor, or any member of
        a broadcast set — is the strategy's knowledge)."""
        return self.strategy.quiet_successor()

    # -- live join (recovery subsystem, EXTENSION) ----------------------------

    def begin_catchup_feed(self, joiner_ip) -> None:
        """Donor side of a live join: send a base snapshot of every
        transferable in-flight connection to ``joiner_ip``, then keep
        forwarding every subsequent deposit as a delta until the chain
        splice arrives.  The overlap with the multicast traffic the
        joiner starts receiving at splice time is harmless — the
        reassembler clips duplicate bytes.

        The base transfer is chunked: the first chunk of each log goes
        in the base snapshot, the rest follow as individual delta
        messages (absolute offsets, so the unordered mgmt layer is
        fine).  Every piece carries ``input_total`` so the joiner knows
        when it has the whole cut."""
        if self.shut_down or self.daemon is None:
            return
        from repro.recovery.state_transfer import snapshot_connections

        joiner_ip = as_address(joiner_ip)
        snaps, keys = snapshot_connections(self)
        self._catchup_feeds[joiner_ip] = keys
        chunk = self.catchup_chunk_size
        base_conns = []
        tail_chunks = []
        for s in snaps:
            total = len(s.input)
            base_conns.append(
                replace(s, input=s.input[:chunk], input_total=total)
            )
            for off in range(chunk, total, chunk):
                tail_chunks.append(
                    replace(
                        s,
                        input=s.input[off : off + chunk],
                        input_start=off,
                        input_total=total,
                    )
                )
            self.catchup_bytes_sent += total
        snapshot = StateSnapshot(
            service_ip=self.service_ip,
            port=self.port,
            donor_ip=self.host_server.ip,
            conns=tuple(base_conns),
            delta=False,
            epoch=self.epoch,
        )
        self.daemon.send_snapshot(snapshot, joiner_ip)
        self.snapshots_sent += 1
        # Ack-clocked window over the tail chunks: dumping the whole
        # base transfer into the socket at once overflows the drop-tail
        # queue on the donor's uplink, which loses snapshot pieces AND
        # the donor's own pongs/reports — a live donor under transfer
        # then reads as dead to the redirector's probe.  Keeping only a
        # few chunks in flight self-paces the transfer to the path.
        queue = list(reversed(tail_chunks))
        self._catchup_queues[joiner_ip] = queue
        in_flight = {"n": 0}

        def pump() -> None:
            if self.shut_down or self._catchup_queues.get(joiner_ip) is not queue:
                return
            while queue and in_flight["n"] < CATCHUP_WINDOW:
                piece = queue.pop()
                in_flight["n"] += 1
                self.daemon.send_snapshot(
                    StateSnapshot(
                        service_ip=self.service_ip,
                        port=self.port,
                        donor_ip=self.host_server.ip,
                        conns=(piece,),
                        delta=True,
                    ),
                    joiner_ip,
                    on_settled=settled,
                )

        def settled() -> None:
            in_flight["n"] -= 1
            pump()

        pump()

    def end_catchup_feed(self, joiner_ip) -> None:
        joiner_ip = as_address(joiner_ip)
        self._catchup_feeds.pop(joiner_ip, None)
        self._catchup_queues.pop(joiner_ip, None)

    def _forward_delta(self, state: FtConnectionState, start: int, data: bytes) -> None:
        """Forward one deposit to every joiner catching up on this
        connection (closes the gap between base snapshot and splice)."""
        if not self._catchup_feeds or self.daemon is None or self.shut_down:
            return
        conn = state.conn
        key = (conn.remote_ip, conn.remote_port)
        for joiner_ip, keys in self._catchup_feeds.items():
            if key not in keys:
                continue
            snap = ConnSnapshot(
                client_ip=conn.remote_ip,
                client_port=conn.remote_port,
                iss=conn.iss,
                irs=conn.irs,
                input=data,
                input_start=start,
                client_acked=conn.snd_una,
                peer_window=conn.peer_window,
            )
            self.daemon.send_snapshot(
                StateSnapshot(
                    service_ip=self.service_ip,
                    port=self.port,
                    donor_ip=self.host_server.ip,
                    conns=(snap,),
                    delta=True,
                ),
                joiner_ip,
            )
            self.catchup_bytes_sent += len(data)

    def install_base_snapshot(self, snapshot: StateSnapshot) -> None:
        """Joiner side: install the donor's base snapshot (synthesize
        the connections, replay the first chunk of each client stream
        through the local server program).  JoinReady follows once the
        remaining chunks have arrived and every installed connection's
        contiguous stream reaches the base cut."""
        if self.shut_down:
            return
        from repro.recovery import state_transfer

        keys = state_transfer.install_snapshot(self, snapshot)
        self.catchup_bytes_received += sum(len(c.input) for c in snapshot.conns)
        for conn_snap in snapshot.conns:
            key = conn_snap.client_key
            if key in keys or key in self.states:
                target = conn_snap.input_total
                if target < 0:
                    target = conn_snap.input_start + len(conn_snap.input)
                self._catchup_targets[key] = target
        self._base_installed = True
        self._maybe_join_ready()

    def apply_delta(self, snapshot: StateSnapshot) -> None:
        """Joiner side: apply an incremental catch-up piece (a chunk of
        the base transfer or a post-snapshot deposit).  The reliable
        mgmt layer is unordered, so a piece can outrun the base
        snapshot — park it until the connection is installed."""
        if self.shut_down:
            return
        from repro.recovery import state_transfer

        for conn_snap in snapshot.conns:
            self.catchup_bytes_received += len(conn_snap.input)
            if conn_snap.client_key in self.states:
                state_transfer.apply_delta(self, conn_snap)
            else:
                pending = self._pending_deltas.setdefault(conn_snap.client_key, [])
                if len(pending) < 256:
                    pending.append(conn_snap)
        self._maybe_join_ready()

    def _maybe_join_ready(self) -> None:
        """Send JoinReady exactly once, when the base snapshot is in
        and every installed connection has caught up to its cut."""
        if (
            not self.joining
            or not self._base_installed
            or self._join_ready_sent
            or self.daemon is None
        ):
            return
        for key, target in self._catchup_targets.items():
            state = self.states.get(key)
            if state is None or state.catchup_log.size < target:
                return
        self._join_ready_sent = True
        self.daemon.join_ready(
            self.service_ip,
            self.port,
            tuple(self._catchup_targets.keys()),
            bytes_received=self.catchup_bytes_received,
        )

    def apply_chain_splice(self, splice: "ChainSplice") -> None:
        """Second phase of the two-phase cut-over.  The same message
        goes to the old tail (start gating the transferred connections
        on the joiner) and to the joiner (you are live: here is your
        predecessor, announce your progress)."""
        if self.shut_down:
            return
        joiner_ip = as_address(splice.joiner_ip)
        if self.host_server.ip == joiner_ip:
            self.joining = False
            self.predecessor_ip = as_address(splice.predecessor_ip)
            self._pending_deltas.clear()
            for raw_key in splice.conn_keys:
                key = (as_address(raw_key[0]), raw_key[1])
                state = self.states.get(key)
                if state is not None:
                    state.announce()
        else:
            # Old tail: the joiner holds live state for exactly the
            # listed connections — gate those (and only those) on it.
            self.end_catchup_feed(joiner_ip)
            self.has_successor = True
            for raw_key in splice.conn_keys:
                key = (as_address(raw_key[0]), raw_key[1])
                state = self.states.get(key)
                if state is not None:
                    self.strategy.splice_gate(state, joiner_ip)

    # -- reconfiguration -------------------------------------------------------------

    def apply_chain_update(self, update: "ChainUpdate") -> None:
        """React to the redirector's view of the chain (paper §4.4).

        Epoch/seq gate the unordered mgmt layer: a layout older than
        one already applied is discarded.  A backup named primary does
        NOT flip modes here — it bids for a :class:`PromotionGrant`
        and promotes only when the grant arrives (DESIGN.md §9)."""
        if self.shut_down:
            return
        stamp = (update.epoch, update.seq)
        if stamp < self._chain_stamp:
            return  # stale layout overtaken by a newer push
        self._chain_stamp = stamp
        self.chain_updates_applied += 1
        old_predecessor = self.predecessor_ip
        self.predecessor_ip = update.predecessor_ip
        had_successor = self.has_successor
        self.has_successor = update.has_successor
        if update.is_primary:
            if self.is_primary:
                if update.epoch > self.epoch:
                    # Still the primary but the view advanced past us
                    # (registration race): re-run the grant handshake
                    # to adopt the new epoch — until then our stamps
                    # are stale and the fence holds our output.
                    self._request_promotion(update.epoch)
            else:
                self._request_promotion(update.epoch)
        else:
            if update.epoch >= self.epoch:
                self.epoch = update.epoch
                self._pending_promotion = None
                if self.is_primary:
                    # A newer view names us backup: step down in place
                    # (we stay a chain member, unlike a Demote).
                    self.mode = PortMode.BACKUP
                    self.demotions += 1
        # Membership consequences (who gates on whom now) belong to
        # the strategy — the chain ungates when its one successor
        # leaves, a star backend reconciles its member views.
        self.strategy.on_chain_update(update, had_successor, old_predecessor)
        for state in list(self.states.values()):
            state.conn.gates_changed()

    def _request_promotion(self, epoch: int) -> None:
        """Ask the redirector for the right to lead ``epoch``."""
        self._pending_promotion = epoch
        if self.daemon is None:
            # Standalone stack (no management plane): there is no
            # arbiter, promote directly as before.
            self._enter_primary(epoch)
            return
        self.daemon.request_promotion(self.service_ip, self.port, epoch)

    def apply_promotion_grant(self, grant: "PromotionGrant") -> None:
        """The redirector granted us ``grant.epoch`` — enter primary
        mode (or, if already primary, adopt the granted epoch)."""
        if self.shut_down:
            return
        if self._pending_promotion is None and not self.is_primary:
            return  # unsolicited (a stale retry) — ignore
        if grant.epoch < self.epoch:
            return
        self._enter_primary(grant.epoch)

    def _enter_primary(self, epoch: int) -> None:
        self._pending_promotion = None
        self.epoch = max(self.epoch, epoch)
        if not self.is_primary:
            self.mode = PortMode.PRIMARY
            self.promotions += 1
            invariants = self.sim.invariants
            if invariants is not None:
                invariants.on_promotion(self)
        self.strategy.on_enter_primary()
        for state in list(self.states.values()):
            state.conn.kick()

    def apply_demote(self, message: "Demote") -> None:
        """Fenced off: a view newer than ours exists and we were still
        acting on the old one.  Fail-stop locally — go silent, kill our
        (stale) connections — and hand the node back through
        ``on_demoted`` so the recovery subsystem can wipe it and rejoin
        it as a backup via the live-join path."""
        if self.shut_down or self.joining:
            # A joiner is a *fresh* actor, not a stale one: a late
            # Demote retry aimed at this node's previous incarnation
            # must not kill the catch-up.
            return
        if message.epoch <= self.epoch:
            # Not provably stale: the granted primary of the current
            # epoch (or a freshly rejoined backup) ignores late
            # Demote retries from before its promotion/rejoin.
            return
        self.demotions += 1
        self.mode = PortMode.BACKUP
        self._pending_promotion = None
        self.shutdown()
        if self.on_demoted is not None:
            self.on_demoted()

    def shutdown(self) -> None:
        """Fail-stop: removed from the replica set, go silent."""
        if self.shut_down:
            return
        self.shut_down = True
        self._liveness_timer.stop()
        self.strategy.on_shutdown()
        if self.listener is not None:
            # Stay bound but refuse (silently): a closed listener would
            # let the stack RST the service's clients, breaking the
            # required fail-stop silence.
            self.listener.accept_new = False
            self.listener.on_accept = None
        self.ack_endpoint.unregister(self.service_ip, self.port)
        for state in list(self.states.values()):
            state.conn.kill_silently()
        self.states.clear()
        self._catchup_feeds.clear()
        self._catchup_queues.clear()
        self._pending_deltas.clear()
        self._catchup_targets.clear()


class FtStack:
    """All replicated ports of one host server, plus daemon wiring."""

    def __init__(
        self,
        host_server: "HostServer",
        ack_endpoint: Optional[AckChannelEndpoint] = None,
        daemon: Optional["HostServerDaemon"] = None,
    ):
        self.host_server = host_server
        self.ack_endpoint = ack_endpoint or AckChannelEndpoint(host_server)
        self.daemon = daemon
        self.port_table = ReplicatedPortTable()
        self.ports: dict[tuple[IPAddress, int], FtPort] = {}
        if daemon is not None:
            daemon.on_chain_update = self._dispatch_chain_update
            daemon.on_shutdown = self._dispatch_shutdown
            daemon.on_join_request = self._dispatch_join_request
            daemon.on_state_snapshot = self._dispatch_state_snapshot
            daemon.on_chain_splice = self._dispatch_chain_splice
            daemon.on_promotion_grant = self._dispatch_promotion_grant
            daemon.on_demote = self._dispatch_demote

    def setportopt(
        self,
        port: int,
        mode: PortMode | str,
        detector: DetectorParams | None = None,
        strategy: str = "chain",
    ) -> None:
        """The ``setportopt(port, mode, detector-parameters)`` call.
        ``strategy`` selects the replication backend (DESIGN.md §15)."""
        self.port_table.setportopt(port, mode, detector, strategy)

    def listen_replicated(
        self,
        service_ip,
        port: int,
        on_accept: Callable[[TcpConnection], None],
        tcp_options: Optional["TcpOptions"] = None,
        joining: bool = False,
    ) -> FtPort:
        """Bind a server program to a replicated port under the virtual
        host of ``service_ip``.  ``setportopt`` must have been called.

        With ``joining=True`` the port comes up as a live joiner: it
        does not register with the redirector (staying out of the
        multicast set and the chain) and mutes its failure detector
        until the recovery manager splices it in."""
        options = self.port_table.get(port)
        if options is None:
            raise FtError(f"port {port} is not replicated (call setportopt first)")
        key = (as_address(service_ip), port)
        if key in self.ports:
            raise FtError(f"service {key[0]}:{port} already bound")
        ft_port = FtPort(
            self.host_server,
            key[0],
            port,
            options.mode,
            options.detector,
            self.ack_endpoint,
            self.daemon,
            strategy=options.strategy,
        )
        ft_port.joining = joining
        ft_port.bind(on_accept, tcp_options, register=not joining)
        self.ports[key] = ft_port
        return ft_port

    def decommission(self, service_ip, port: int) -> None:
        """Tear down a replica's local state for a service (used when a
        recovered server re-joins: its pre-crash TCP state is stale and
        must never reach a client)."""
        key = (as_address(service_ip), port)
        ft_port = self.ports.pop(key, None)
        if ft_port is not None:
            ft_port.shutdown()
            if ft_port.listener is not None:
                # Free the binding for the replacement FtPort.
                ft_port.listener.close()
        self.port_table.remove(port)

    def _dispatch_chain_update(self, update: "ChainUpdate") -> None:
        ft_port = self.ports.get((as_address(update.service_ip), update.port))
        if ft_port is not None:
            ft_port.apply_chain_update(update)

    def _dispatch_shutdown(self, message) -> None:
        key = (as_address(message.service_ip), message.port)
        ft_port = self.ports.get(key)
        if ft_port is not None:
            ft_port.shutdown()

    def _dispatch_join_request(self, request: "JoinRequest") -> None:
        ft_port = self.ports.get((as_address(request.service_ip), request.port))
        if ft_port is not None:
            ft_port.begin_catchup_feed(request.joiner_ip)

    def _dispatch_state_snapshot(self, snapshot: StateSnapshot) -> None:
        ft_port = self.ports.get((as_address(snapshot.service_ip), snapshot.port))
        if ft_port is None:
            return
        if snapshot.delta:
            ft_port.apply_delta(snapshot)
        else:
            ft_port.install_base_snapshot(snapshot)

    def _dispatch_chain_splice(self, splice: "ChainSplice") -> None:
        ft_port = self.ports.get((as_address(splice.service_ip), splice.port))
        if ft_port is not None:
            ft_port.apply_chain_splice(splice)

    def _dispatch_promotion_grant(self, grant: "PromotionGrant") -> None:
        ft_port = self.ports.get((as_address(grant.service_ip), grant.port))
        if ft_port is not None:
            ft_port.apply_promotion_grant(grant)

    def _dispatch_demote(self, message: "Demote") -> None:
        ft_port = self.ports.get((as_address(message.service_ip), message.port))
        if ft_port is not None:
            ft_port.apply_demote(message)
