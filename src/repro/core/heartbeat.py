"""Heartbeat-based failure detection (ablation A7 — the classic
alternative to the paper's retransmission estimator).

The paper detects failures by observing TCP retransmissions: zero
overhead while everything works, latency coupled to client RTO backoff,
and — crucially — blind when no traffic flows.  The textbook
alternative keeps replicas sending periodic heartbeats to the
redirector, which declares a replica failed after ``tolerance`` missed
periods: constant background traffic, but bounded detection latency
even for idle services.  Both run side by side in
:mod:`repro.experiments.detector_comparison`.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.netsim.addressing import IPAddress, as_address
from repro.netsim.simulator import Timer

from repro.hydranet.mgmt import MgmtMessage

if TYPE_CHECKING:
    from repro.hydranet.daemons import HostServerDaemon, RedirectorDaemon


@dataclass
class Heartbeat(MgmtMessage):
    """Replica → redirector: still alive for this service."""

    service_ip: IPAddress
    port: int
    server_ip: IPAddress
    wire_size = 24


class HeartbeatSender:
    """Periodic heartbeats from one replica for one service."""

    def __init__(
        self,
        daemon: "HostServerDaemon",
        service_ip,
        port: int,
        period: float = 1.0,
    ):
        self.daemon = daemon
        self.sim = daemon.sim
        self.service_ip = as_address(service_ip)
        self.port = port
        self.period = period
        self.sent = 0
        self._timer = Timer(self.sim, self._beat)
        self._stopped = False
        self._timer.start(period)

    def _beat(self) -> None:
        if self._stopped:
            return
        self._timer.start(self.period)
        if self.daemon.host_server.crashed:
            return  # a dead host sends nothing (fail-stop)
        self.sent += 1
        self.daemon.channel.send_unreliable(
            Heartbeat(self.service_ip, self.port, self.daemon.ip),
            self.daemon.redirector_ip,
        )

    def stop(self) -> None:
        self._stopped = True
        self._timer.stop()


class HeartbeatDetector:
    """Redirector-side adaptive failure detector.

    Instead of a fixed ``period * tolerance`` deadline, each replica's
    timeout adapts to its *observed* heartbeat inter-arrival
    distribution (phi-accrual style, DESIGN.md §14): a sliding window
    of samples yields a per-replica timeout of
    ``tolerance * mean + STD_FACTOR * std``, clamped to
    ``[period, CAP_FACTOR * period * tolerance]``.  Until
    ``MIN_SAMPLES`` arrivals have been seen the detector falls back to
    the classic fixed deadline, so cold-start behaviour is unchanged.

    The payoff under gray failures: a replica whose heartbeats arrive
    with growing jitter (asymmetric loss eats every other beat) widens
    its own timeout instead of flapping in and out of the replica set,
    while a clean-cadence replica keeps a tight timeout and is excised
    quickly when it truly dies.  Everything is computed from simulated
    arrival times — fully deterministic per seed.
    """

    #: Inter-arrival samples kept per replica.
    SAMPLE_WINDOW = 20
    #: Below this many samples the fixed deadline applies.
    MIN_SAMPLES = 4
    #: Standard deviations of headroom above the scaled mean.
    STD_FACTOR = 3.0
    #: Adaptive timeout never exceeds this multiple of the fixed one.
    CAP_FACTOR = 3.0

    def __init__(
        self,
        daemon: "RedirectorDaemon",
        period: float = 1.0,
        tolerance: int = 3,
    ):
        self.daemon = daemon
        self.sim = daemon.sim
        self.period = period
        self.tolerance = tolerance
        # (service key, replica ip) -> last heartbeat time.
        self._last_heard: dict[tuple, float] = {}
        # (service key, replica ip) -> recent inter-arrival samples.
        self._samples: dict[tuple, deque] = {}
        # Replicas present in the table but never heard from: when we
        # first noticed them (a replica that dies before its first
        # heartbeat must still be detected).
        self._watching: dict[tuple, float] = {}
        self.detections = 0
        self.zombie_heartbeats = 0
        self._timer = Timer(self.sim, self._sweep)
        self._timer.start(period)

    def on_heartbeat(self, message: Heartbeat) -> None:
        from repro.hydranet.redirector import ServiceKey

        service_key = ServiceKey(as_address(message.service_ip), message.port)
        sender = as_address(message.server_ip)
        entry = self.daemon.redirector.table.get(service_key)
        if (
            entry is not None
            and entry.fault_tolerant
            and sender not in entry.replicas
        ):
            # A heartbeat from outside the replica set: a replica
            # removed in an earlier view is back (a healed partition)
            # and doesn't know it.  It must not be re-armed — demote it
            # instead (acted on only if its view is provably stale,
            # DESIGN.md §9).
            self.zombie_heartbeats += 1
            self.daemon._send_demote(service_key, sender, entry.epoch)
            return
        key = (service_key, sender)
        now = self.sim.now
        prev = self._last_heard.get(key)
        if prev is not None and now > prev:
            samples = self._samples.get(key)
            if samples is None:
                samples = self._samples[key] = deque(maxlen=self.SAMPLE_WINDOW)
            samples.append(now - prev)
        self._last_heard[key] = now

    def timeout_for(self, key: tuple) -> float:
        """The silence (seconds) after which ``key`` becomes suspect."""
        samples = self._samples.get(key)
        fixed = self.period * self.tolerance
        if samples is None or len(samples) < self.MIN_SAMPLES:
            return fixed
        n = len(samples)
        mean = sum(samples) / n
        var = sum((s - mean) ** 2 for s in samples) / n
        adaptive = self.tolerance * mean + self.STD_FACTOR * math.sqrt(var)
        return min(max(adaptive, self.period), self.CAP_FACTOR * fixed)

    def suspicion(self, service_key, replica) -> float:
        """Current suspicion score: elapsed silence over the adaptive
        timeout.  > 1.0 means the next sweep will excise the replica."""
        key = (service_key, replica)
        heard = self._last_heard.get(key)
        if heard is None:
            heard = self._watching.get(key)
        if heard is None:
            return 0.0
        return (self.sim.now - heard) / self.timeout_for(key)

    def _sweep(self) -> None:
        self._timer.start(self.period)
        now = self.sim.now
        suspects: dict = {}
        current: set[tuple] = set()
        for service_key, entry in list(self.daemon.redirector.table.items()):
            if not entry.fault_tolerant:
                continue
            for replica in entry.replicas:
                key = (service_key, replica)
                current.add(key)
                heard = self._last_heard.get(key)
                if heard is None:
                    # Never heard: start the clock when first noticed.
                    heard = self._watching.setdefault(key, now)
                # Strictly greater than: a replica exactly at the
                # boundary survives one more sweep.  The elapsed time
                # is compared directly against the timeout — never via
                # a precomputed ``now - timeout`` deadline, whose
                # rounding made boundary behaviour drift across seeds.
                if now - heard > self.timeout_for(key):
                    suspects.setdefault(service_key, set()).add(replica)
        # Forget replicas no longer in the table.
        self._last_heard = {k: v for k, v in self._last_heard.items() if k in current}
        self._watching = {k: v for k, v in self._watching.items() if k in current}
        self._samples = {k: v for k, v in self._samples.items() if k in current}
        for service_key, dead in suspects.items():
            self.detections += 1
            for replica in dead:
                self._last_heard.pop((service_key, replica), None)
                self._watching.pop((service_key, replica), None)
                self._samples.pop((service_key, replica), None)
            self.daemon._remove_and_rechain(service_key, dead)

    def stop(self) -> None:
        self._timer.stop()


def enable_heartbeats(
    redirector_daemon: "RedirectorDaemon",
    ft_nodes,
    service_ip,
    port: int,
    period: float = 1.0,
    tolerance: int = 3,
) -> tuple[HeartbeatDetector, list[HeartbeatSender]]:
    """Wire heartbeat detection for one service: a detector on the
    redirector plus a sender per replica."""
    detector = HeartbeatDetector(redirector_daemon, period, tolerance)
    original = redirector_daemon._on_message

    def with_heartbeats(message, src_ip, src_port):
        if isinstance(message, Heartbeat):
            detector.on_heartbeat(message)
            return
        original(message, src_ip, src_port)

    redirector_daemon._on_message = with_heartbeats
    redirector_daemon.channel.on_message = with_heartbeats
    senders = [
        HeartbeatSender(node.daemon, service_ip, port, period) for node in ft_nodes
    ]
    return detector, senders
