"""Replicated ports (paper §4.1).

A TCP port is marked *replicated* with::

    setportopt(port, mode, detector_parameters)

before the server program binds to it.  ``mode`` says whether the
replica binding to the port acts as the primary or a backup, and the
detector parameters tune the failure estimator for the port.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class PortMode(enum.Enum):
    PRIMARY = "primary"
    BACKUP = "backup"


@dataclass(frozen=True)
class DetectorParams:
    """Failure-detector tuning for one replicated port.

    ``threshold`` is the number of observed client retransmissions
    before a reconfiguration is initiated — the paper's trade-off
    between detection latency and false positives.  It should stay
    above TCP's own fast-retransmit trigger (3 duplicate ACKs) so the
    detector does not interfere with congestion control.
    """

    threshold: int = 4
    #: Retransmissions are counted within a sliding window this long.
    window: float = 10.0
    #: Minimum spacing between successive failure reports.
    cooldown: float = 2.0
    #: The successor is named as a suspect if the acknowledgement
    #: channel has been quiet for this long while connections stall.
    successor_quiet: float = 1.0
    #: Graceful degradation (DESIGN.md §14): when set, a successor that
    #: keeps *talking* on the acknowledgement channel but leaves our
    #: output blocked for longer than this is reported as a suspect —
    #: the gray-failure case (slow-but-alive replica) the quiet-based
    #: check above is blind to.  ``None`` (the default) disables the
    #: check entirely, preserving classic fail-stop-only behaviour.
    degradation_timeout: Optional[float] = None

    def __post_init__(self):
        if self.threshold < 1:
            raise ValueError("threshold must be >= 1")
        if self.window <= 0 or self.cooldown < 0:
            raise ValueError("bad detector window/cooldown")
        if self.degradation_timeout is not None and self.degradation_timeout <= 0:
            raise ValueError("degradation_timeout must be positive")


@dataclass
class ReplicatedPortOptions:
    port: int
    mode: PortMode
    detector: DetectorParams
    #: Replication backend name (DESIGN.md §15): ``"chain"`` (the
    #: paper's daisy chain), ``"broadcast"``, ``"checkpoint"``, or any
    #: strategy registered with :mod:`repro.replication`.
    strategy: str = "chain"


class ReplicatedPortTable:
    """The per-host kernel table behind ``setportopt``."""

    def __init__(self):
        self._table: dict[int, ReplicatedPortOptions] = {}

    def setportopt(
        self,
        port: int,
        mode: PortMode | str,
        detector: DetectorParams | None = None,
        strategy: str = "chain",
    ) -> ReplicatedPortOptions:
        """Mark ``port`` as replicated.  Re-issuing changes the mode
        (used when a backup is promoted)."""
        if isinstance(mode, str):
            mode = PortMode(mode)
        options = ReplicatedPortOptions(
            port, mode, detector or DetectorParams(), strategy
        )
        self._table[port] = options
        return options

    def get(self, port: int) -> ReplicatedPortOptions | None:
        return self._table.get(port)

    def is_replicated(self, port: int) -> bool:
        return port in self._table

    def remove(self, port: int) -> None:
        self._table.pop(port, None)
