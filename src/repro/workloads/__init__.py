"""Workload generators and parameter sweeps."""

from .cross_traffic import CrossTrafficFlow, CrossTrafficStats
from .generators import (
    FIGURE4_PACKET_SIZES,
    HttpWorkload,
    RequestRecord,
    nbuf_for_size,
    ttcp_sweep_sizes,
)

__all__ = [
    "CrossTrafficFlow",
    "CrossTrafficStats",
    "FIGURE4_PACKET_SIZES",
    "HttpWorkload",
    "RequestRecord",
    "nbuf_for_size",
    "ttcp_sweep_sizes",
]
