"""Background (cross) traffic: UDP flows that load links so experiments
can study HydraNet-FT under congestion rather than on an idle network.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netsim.host import Host
from repro.sockets.api import node_for

CROSS_TRAFFIC_PORT = 9


@dataclass
class CrossTrafficStats:
    datagrams_sent: int = 0
    datagrams_received: int = 0

    @property
    def delivery_rate(self) -> float:
        if self.datagrams_sent == 0:
            return 0.0
        return self.datagrams_received / self.datagrams_sent


class CrossTrafficFlow:
    """A constant-bit-rate UDP flow from one host to another.

    ``rate_bps`` is offered load in payload bits/second; the flow sends
    fixed-size datagrams at the corresponding interval.  Start/stop at
    any virtual time; stats count end-to-end delivery.
    """

    def __init__(
        self,
        src: Host,
        dst: Host,
        rate_bps: float = 2_000_000.0,
        datagram_size: int = 1000,
        port: int = CROSS_TRAFFIC_PORT,
    ):
        self.src = src
        self.dst_ip = dst.ip
        self.sim = src.sim
        self.datagram_size = datagram_size
        self.interval = datagram_size * 8 / rate_bps
        self.port = port
        self.stats = CrossTrafficStats()
        self._running = False
        self._payload = b"\x00" * datagram_size
        self._socket = node_for(src).udp_socket()
        sink = node_for(dst).udp_socket()
        try:
            sink.bind(port)
        except Exception:
            pass  # a sink for this port already exists on dst
        else:
            sink.on_datagram = self._on_received

    def _on_received(self, data, src_ip, src_port, dst_ip) -> None:
        self.stats.datagrams_received += 1

    def start(self) -> None:
        if not self._running:
            self._running = True
            self._tick()

    def stop(self) -> None:
        self._running = False

    def run_for(self, duration: float) -> None:
        """Start now, stop after ``duration`` (convenience)."""
        self.start()
        self.sim.schedule(duration, self.stop)

    def _tick(self) -> None:
        if not self._running:
            return
        self._socket.send_to(self.dst_ip, self.port, self._payload)
        self.stats.datagrams_sent += 1
        self.sim.schedule(self.interval, self._tick)
