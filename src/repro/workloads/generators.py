"""Workload generators: parameter sweeps and client populations."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

from repro.apps.httpd import HttpClient, HttpResponse
from repro.netsim.simulator import Simulator
from repro.sockets.api import Node

#: The packet sizes of the paper's Figure 4.
FIGURE4_PACKET_SIZES = (16, 32, 64, 128, 256, 512, 1024)


def ttcp_sweep_sizes() -> tuple[int, ...]:
    return FIGURE4_PACKET_SIZES


def nbuf_for_size(buflen: int, target_bytes: int = 262_144, max_nbuf: int = 4096) -> int:
    """ttcp buffer count scaled so every packet size moves roughly the
    same number of bytes (like fixing total transfer volume)."""
    return max(64, min(max_nbuf, target_bytes // buflen))


@dataclass
class RequestRecord:
    path: str
    issued_at: float
    response: Optional[HttpResponse] = None

    @property
    def done(self) -> bool:
        return self.response is not None


class HttpWorkload:
    """A closed-loop population of HTTP clients issuing deterministic
    request sequences with exponential-ish think times drawn from the
    simulator RNG."""

    def __init__(
        self,
        sim: Simulator,
        nodes: Sequence[Node],
        server_ip,
        port: int = 80,
        paths: Iterable[str] = ("/object/1000",),
        requests_per_client: int = 10,
        mean_think_time: float = 0.1,
    ):
        self.sim = sim
        self.nodes = list(nodes)
        self.server_ip = server_ip
        self.port = port
        self.paths = list(paths)
        self.requests_per_client = requests_per_client
        self.mean_think_time = mean_think_time
        self.records: list[RequestRecord] = []
        self._remaining = {i: requests_per_client for i in range(len(self.nodes))}
        self.on_complete: Optional[Callable[[], None]] = None

    def start(self) -> None:
        for i in range(len(self.nodes)):
            self._issue(i)

    def _issue(self, client_index: int) -> None:
        if self._remaining[client_index] <= 0:
            return
        self._remaining[client_index] -= 1
        node = self.nodes[client_index]
        path = self.paths[
            (client_index + self.requests_per_client - self._remaining[client_index])
            % len(self.paths)
        ]
        record = RequestRecord(path, self.sim.now)
        self.records.append(record)

        def on_response(response: HttpResponse) -> None:
            record.response = response
            if self._remaining[client_index] > 0:
                think = self.sim.rng.expovariate(1.0 / self.mean_think_time)
                self.sim.schedule(think, self._issue, client_index)
            elif self.complete and self.on_complete is not None:
                self.on_complete()

        HttpClient(node, self.server_ip, self.port).get(path, on_response)

    @property
    def complete(self) -> bool:
        return all(r.done for r in self.records) and all(
            n == 0 for n in self._remaining.values()
        )

    @property
    def successes(self) -> int:
        return sum(1 for r in self.records if r.done and r.response.ok)

    @property
    def failures(self) -> int:
        return sum(1 for r in self.records if r.done and not r.response.ok)

    def latencies(self) -> list[float]:
        return [r.response.elapsed for r in self.records if r.done]
