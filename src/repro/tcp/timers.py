"""Retransmission-timeout estimation: Jacobson/Karels with Karn's rule.

The RTO estimator matters directly to the reproduction: the paper
attributes most of the primary+backup throughput loss to *timeouts* at
the client ("it is the lengthy timeout, not the re-transmission, which
affects the performance"), so timeout behaviour must be faithful.
"""

from __future__ import annotations

from typing import Optional

from .options import TcpOptions


class RtoEstimator:
    """SRTT/RTTVAR smoothing per RFC 6298 (alpha=1/8, beta=1/4)."""

    def __init__(self, options: TcpOptions):
        self._options = options
        self._srtt: Optional[float] = None
        self._rttvar: Optional[float] = None
        self._rto = options.initial_rto
        self._backoff = 0
        self.samples = 0

    @property
    def srtt(self) -> Optional[float]:
        return self._srtt

    @property
    def rttvar(self) -> Optional[float]:
        return self._rttvar

    @property
    def rto(self) -> float:
        """Current RTO including exponential backoff, clamped."""
        rto = self._rto * (2**self._backoff)
        return min(max(rto, self._options.min_rto), self._options.max_rto)

    @property
    def backoff_count(self) -> int:
        return self._backoff

    def on_measurement(self, rtt: float) -> None:
        """Feed one RTT sample (never from a retransmitted segment —
        Karn's rule is the caller's responsibility)."""
        if rtt < 0:
            raise ValueError(f"negative RTT sample: {rtt}")
        self.samples += 1
        if self._srtt is None:
            self._srtt = rtt
            self._rttvar = rtt / 2
        else:
            err = rtt - self._srtt
            self._rttvar = 0.75 * self._rttvar + 0.25 * abs(err)
            self._srtt = self._srtt + err / 8
        self._rto = self._srtt + max(4 * self._rttvar, 0.010)
        self._backoff = 0

    def on_timeout(self) -> None:
        """Exponential backoff after a retransmission timeout."""
        self._backoff += 1

    def reset_backoff(self) -> None:
        self._backoff = 0
