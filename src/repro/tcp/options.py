"""TCP tuning knobs.

One :class:`TcpOptions` instance configures a stack (and can be
overridden per connection).  The defaults model a late-90s BSD stack;
``segment_per_write=True`` reproduces the paper's measurement setup
("we turned off buffering of small segments at the TCP sender").
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional


@dataclass(frozen=True)
class TcpOptions:
    #: Maximum segment size; None derives it from the egress MTU.
    mss: Optional[int] = None
    #: Nagle's algorithm (RFC 896).  ttcp-style measurements disable it.
    nagle: bool = True
    #: When True, application write boundaries become segment
    #: boundaries (no coalescing in the send buffer).  This is the
    #: paper's "no batching of small segments" measurement mode.
    segment_per_write: bool = False
    #: Delayed-ACK (RFC 1122): ack every second segment or after timeout.
    delayed_ack: bool = True
    delayed_ack_timeout: float = 0.2
    #: Socket buffer sizes, bytes.
    send_buffer_size: int = 65535
    recv_buffer_size: int = 65535
    #: Retransmission timeout bounds, seconds (4.4BSD-ish).
    initial_rto: float = 1.0
    min_rto: float = 1.0
    max_rto: float = 64.0
    #: Give up on a connection after this many consecutive RTOs.
    max_retries: int = 12
    max_syn_retries: int = 5
    #: Initial congestion window, in segments.
    initial_cwnd_segments: int = 2
    #: Duplicate ACKs that trigger fast retransmit.
    dupack_threshold: int = 3
    #: Selective acknowledgements (RFC 2018).  Negotiated on the SYN:
    #: effective only when both ends enable it.  Helps recovery of
    #: multiple losses per window; off by default (as in period BSD).
    sack: bool = False
    #: 2*MSL bounds TIME_WAIT; kept short to keep simulations snappy.
    msl: float = 5.0
    #: Zero-window persist probe interval bounds, seconds.
    persist_min: float = 0.5
    persist_max: float = 60.0
    #: When a deposit gate (ft-TCP) holds back in-order data: True
    #: stages it in the reassembly buffer until the gate opens (clean
    #: behaviour); False drops it like the paper's "conservative"
    #: kernel modification — the client retransmits after a timeout,
    #: which is the pathology §5 blames for the primary+backup
    #: throughput hit.
    stage_gated_data: bool = True
    #: False models the paper's conservatively modified receive path:
    #: the advertised window is simply ``buffer - held bytes`` (held
    #: includes gate-staged data), so the right edge can retreat while
    #: the deposit gate lags, and data beyond the current edge is
    #: silently dropped.  Those are tail drops, recovered by client
    #: RTOs — "it is the lengthy timeout, not the re-transmission,
    #: which affects the performance" (§5).  True is the RFC-compliant
    #: non-retreating edge.
    rfc_window_edge: bool = True

    def with_overrides(self, **kw) -> "TcpOptions":
        """Return a copy with the given fields replaced."""
        return replace(self, **kw)

    def effective_mss(self, mtu: int) -> int:
        """MSS for a path with the given MTU (IP + TCP headers = 40)."""
        derived = mtu - 40
        if self.mss is not None:
            return min(self.mss, derived)
        return derived
