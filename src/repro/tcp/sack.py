"""Selective acknowledgements (RFC 2018): the sender-side scoreboard
and receiver-side block generation helpers.

SACK is era-appropriate (1996) but optional — the reproduction's
Figure-4 configurations leave it off, matching the paper's stack; the
substrate supports it for the loss-recovery comparison tests.
"""

from __future__ import annotations

from typing import Optional


class SackScoreboard:
    """Sender-side record of peer-reported received ranges.

    All positions are stream offsets; ranges are kept sorted and
    disjoint.  Per RFC 2018 the information is advisory: it is cleared
    on RTO and everything below the cumulative ACK point is dropped.
    """

    def __init__(self):
        self._ranges: list[tuple[int, int]] = []

    @property
    def ranges(self) -> list[tuple[int, int]]:
        return list(self._ranges)

    def record(self, start: int, end: int) -> None:
        """Merge one reported block [start, end)."""
        if end <= start:
            return
        merged: list[tuple[int, int]] = []
        placed = False
        for lo, hi in self._ranges:
            if hi < start or lo > end:
                merged.append((lo, hi))
            else:
                start = min(start, lo)
                end = max(end, hi)
        for i, (lo, hi) in enumerate(merged):
            if start < lo:
                merged.insert(i, (start, end))
                placed = True
                break
        if not placed:
            merged.append((start, end))
        merged.sort()
        self._ranges = merged

    def advance(self, cumulative: int) -> None:
        """Drop everything below the cumulative ACK point."""
        self._ranges = [
            (max(lo, cumulative), hi) for lo, hi in self._ranges if hi > cumulative
        ]

    def clear(self) -> None:
        """RTO: SACK information is advisory and must be discarded."""
        self._ranges = []

    def is_sacked(self, offset: int) -> bool:
        return any(lo <= offset < hi for lo, hi in self._ranges)

    def first_hole(self, start: int, limit: int) -> Optional[tuple[int, int]]:
        """The first unsacked gap at or after ``start``, clipped to
        ``limit``; None when everything in [start, limit) is sacked."""
        position = start
        for lo, hi in self._ranges:
            if hi <= position:
                continue
            if lo > position:
                return (position, min(lo, limit)) if position < limit else None
            position = hi
            if position >= limit:
                return None
        return (position, limit) if position < limit else None

    def sacked_bytes_above(self, cumulative: int) -> int:
        return sum(
            max(0, hi - max(lo, cumulative)) for lo, hi in self._ranges
        )
