"""32-bit TCP sequence-number arithmetic (RFC 793 comparisons).

All on-the-wire sequence numbers are 32-bit and wrap; internally the
stack works with unbounded Python stream offsets and converts at the
edge using these helpers.
"""

from __future__ import annotations

SEQ_MOD = 2**32
_HALF = 2**31


def seq_add(seq: int, delta: int) -> int:
    """Add ``delta`` (may be negative) to a sequence number, mod 2**32."""
    return (seq + delta) % SEQ_MOD


def seq_diff(a: int, b: int) -> int:
    """Signed distance ``a - b`` interpreted in the window [-2**31, 2**31)."""
    diff = (a - b) % SEQ_MOD
    if diff >= _HALF:
        diff -= SEQ_MOD
    return diff


def seq_lt(a: int, b: int) -> bool:
    return seq_diff(a, b) < 0


def seq_le(a: int, b: int) -> bool:
    return seq_diff(a, b) <= 0


def seq_gt(a: int, b: int) -> bool:
    return seq_diff(a, b) > 0


def seq_ge(a: int, b: int) -> bool:
    return seq_diff(a, b) >= 0


def seq_between(low: int, seq: int, high: int) -> bool:
    """True when ``low <= seq <= high`` in wrapped arithmetic."""
    return seq_le(low, seq) and seq_le(seq, high)
