"""A full TCP implementation over the simulated network.

Handshake, sliding windows, cumulative/duplicate ACKs, RTO with Karn's
rule, Reno congestion control, delayed ACKs, Nagle, persist probes, and
graceful close — plus the hook points HydraNet-FT's ft-TCP needs
(deposit/transmit gates and an output filter).
"""

from .buffers import Reassembler, SendBuffer, SocketBuffer
from .congestion import CongestionControl
from .options import TcpOptions
from .sack import SackScoreboard
from .seqnum import seq_add, seq_between, seq_diff, seq_ge, seq_gt, seq_le, seq_lt
from .stack import Listener, TcpStack, deterministic_iss
from .tcb import TcpConnection, TcpError, TcpState
from .timers import RtoEstimator

__all__ = [
    "Reassembler",
    "SendBuffer",
    "SocketBuffer",
    "CongestionControl",
    "TcpOptions",
    "SackScoreboard",
    "seq_add",
    "seq_between",
    "seq_diff",
    "seq_ge",
    "seq_gt",
    "seq_le",
    "seq_lt",
    "Listener",
    "TcpStack",
    "deterministic_iss",
    "TcpConnection",
    "TcpError",
    "TcpState",
    "RtoEstimator",
]
