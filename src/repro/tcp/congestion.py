"""Congestion control: TCP Reno (slow start, congestion avoidance,
fast retransmit / fast recovery).

The paper leans on TCP's own congestion behaviour twice: the failure
detector threshold "should be high enough to not interfere with TCP's
own congestion control ... which initiates a slow-start recovery after
detecting a triple acknowledgment", and the throughput measurements run
over ordinary Reno dynamics.
"""

from __future__ import annotations

from .options import TcpOptions


class CongestionControl:
    """Byte-counting Reno."""

    def __init__(self, options: TcpOptions, mss: int):
        self.options = options
        self.mss = mss
        self.cwnd = options.initial_cwnd_segments * mss
        self.ssthresh = 64 * 1024
        self.in_fast_recovery = False
        self._recovery_point = 0  # stream offset that ends recovery
        self.fast_retransmits = 0
        self.timeouts = 0

    @property
    def in_slow_start(self) -> bool:
        return self.cwnd < self.ssthresh

    def on_ack(self, newly_acked: int, snd_nxt_offset: int) -> None:
        """A cumulative ACK covered ``newly_acked`` fresh bytes."""
        if newly_acked <= 0:
            return
        if self.in_fast_recovery:
            # NewReno-lite: exit recovery once the recovery point is
            # acked; partial ACKs deflate instead of growing.
            return
        if self.in_slow_start:
            self.cwnd += min(newly_acked, self.mss)
        else:
            self.cwnd += max(1, self.mss * self.mss // self.cwnd)

    def ack_covers_recovery(self, acked_offset: int) -> bool:
        return acked_offset >= self._recovery_point

    def on_full_ack_in_recovery(self) -> None:
        self.in_fast_recovery = False
        self.cwnd = self.ssthresh

    def on_dupacks(self, flight_size: int, snd_nxt_offset: int) -> bool:
        """Third duplicate ACK seen.  Returns True if the caller should
        fast-retransmit (i.e. we were not already in recovery)."""
        if self.in_fast_recovery:
            self.cwnd += self.mss  # window inflation per extra dupack
            return False
        self.fast_retransmits += 1
        self.ssthresh = max(2 * self.mss, flight_size // 2)
        self.cwnd = self.ssthresh + self.options.dupack_threshold * self.mss
        self.in_fast_recovery = True
        self._recovery_point = snd_nxt_offset
        return True

    def on_extra_dupack(self) -> None:
        if self.in_fast_recovery:
            self.cwnd += self.mss

    def on_timeout(self, flight_size: int) -> None:
        """Retransmission timeout: collapse to one segment."""
        self.timeouts += 1
        self.ssthresh = max(2 * self.mss, flight_size // 2)
        self.cwnd = self.mss
        self.in_fast_recovery = False

    def window(self, peer_window: int) -> int:
        """Effective send window: min(cwnd, peer's advertised window)."""
        return min(self.cwnd, peer_window)
