"""Per-host TCP stack: port table, demultiplexing, listeners.

The stack is deliberately kernel-shaped: listeners and connections hang
off a table keyed by the classic 4-tuple, and HydraNet-FT's replicated
ports plug in through the listener's ``configure_connection`` hook and a
deterministic ISS policy (all replicas of a connection must produce the
same initial sequence number for client ACKs to mean the same thing at
every replica — see DESIGN.md).
"""

from __future__ import annotations

import zlib
from typing import Callable, Optional

from repro.netsim.addressing import IPAddress, as_address
from repro.netsim.host import Host
from repro.netsim.packet import FLAG_ACK, FLAG_RST, IPPacket, Protocol, TCPSegment

from .options import TcpOptions
from .seqnum import seq_add
from .tcb import TcpConnection, TcpError

EPHEMERAL_PORT_START = 32768
EPHEMERAL_PORT_END = 49151

ConnKey = tuple[IPAddress, int, IPAddress, int]

IssPolicy = Callable[[IPAddress, int, IPAddress, int], int]


def deterministic_iss(
    local_ip: IPAddress, local_port: int, remote_ip: IPAddress, remote_port: int
) -> int:
    """ISS as a pure function of the 4-tuple.

    Every replica of a replicated service computes the same ISS for the
    same client connection, which keeps the byte streams of primary and
    backups aligned (the client's ACKs are multicast to all of them).
    """
    key = f"{local_ip}:{local_port}:{remote_ip}:{remote_port}".encode()
    return zlib.crc32(key) & 0xFFFFFFFF


class Listener:
    """A passive TCP endpoint (the result of ``listen()``)."""

    def __init__(
        self,
        stack: "TcpStack",
        port: int,
        ip: Optional[IPAddress],
        options: TcpOptions,
    ):
        self.stack = stack
        self.port = port
        self.ip = ip
        self.options = options
        #: Called with the new connection once it is ESTABLISHED.
        self.on_accept: Optional[Callable[[TcpConnection], None]] = None
        #: Called with the new connection right after creation, before
        #: the SYN-ACK goes out — the ft-TCP layer installs its gates
        #: and output filter here.
        self.configure_connection: Optional[Callable[[TcpConnection], None]] = None
        #: Override the ISS policy for connections to this port.
        self.iss_policy: Optional[IssPolicy] = None
        #: When True, non-SYN segments that match no connection are
        #: dropped instead of answered with RST.  Replicated ports set
        #: this: a replica that joined mid-connection (or lost its
        #: state) must never reset the client connection its peers are
        #: still serving.
        self.silent_on_unknown = False
        #: Called with (packet, segment) for each silently dropped
        #: unknown segment — the ft failure estimator counts them (a
        #: client retransmitting into a connection nobody answers).
        self.on_unknown_segment: Optional[Callable] = None
        #: When False the listener stays bound but spawns no new
        #: connections (a shut-down replica keeps its port reserved and
        #: silent rather than RSTing the service's clients).
        self.accept_new = True
        self.closed = False
        self.connections_accepted = 0

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            self.stack.remove_listener(self)


class TcpStack:
    """TCP protocol machinery for one host."""

    def __init__(self, host: Host, options: Optional[TcpOptions] = None):
        self.host = host
        self.sim = host.sim
        self.options = options or TcpOptions()
        self.connections: dict[ConnKey, TcpConnection] = {}
        self.listeners: dict[tuple[Optional[IPAddress], int], Listener] = {}
        self._next_ephemeral = EPHEMERAL_PORT_START
        self._iss_counter = 1000
        host.kernel.register_protocol(Protocol.TCP, self._receive)
        self.segments_demuxed = 0
        self.resets_sent = 0

    # -- ISS ------------------------------------------------------------

    def default_iss(
        self,
        local_ip: IPAddress,
        local_port: int,
        remote_ip: IPAddress,
        remote_port: int,
    ) -> int:
        """BSD-style: a counter bumped per connection (plus a seed so
        different hosts do not collide)."""
        self._iss_counter = (self._iss_counter + 64_000) % (2**32)
        return (self._iss_counter + int(local_ip)) % (2**32)

    # -- active open -------------------------------------------------------

    def connect(
        self,
        remote_ip: IPAddress | str,
        remote_port: int,
        local_ip: Optional[IPAddress | str] = None,
        options: Optional[TcpOptions] = None,
    ) -> TcpConnection:
        remote = as_address(remote_ip)
        opts = options or self.options
        nic = self.host.kernel.route_lookup(remote)
        if nic is None:
            raise TcpError(f"{self.host.name}: no route to {remote}")
        src = as_address(local_ip) if local_ip is not None else nic.ip
        port = self._allocate_ephemeral(src, remote, remote_port)
        mss = opts.effective_mss(nic.mtu)
        iss = self.default_iss(src, port, remote, remote_port)
        conn = TcpConnection(self, src, port, remote, remote_port, opts, mss, iss)
        self.connections[(src, port, remote, remote_port)] = conn
        conn.open_active()
        return conn

    def _allocate_ephemeral(
        self, local_ip: IPAddress, remote_ip: IPAddress, remote_port: int
    ) -> int:
        for _ in range(EPHEMERAL_PORT_END - EPHEMERAL_PORT_START + 1):
            port = self._next_ephemeral
            self._next_ephemeral += 1
            if self._next_ephemeral > EPHEMERAL_PORT_END:
                self._next_ephemeral = EPHEMERAL_PORT_START
            if (local_ip, port, remote_ip, remote_port) not in self.connections:
                return port
        raise TcpError("ephemeral ports exhausted")

    # -- passive open --------------------------------------------------------

    def listen(
        self,
        port: int,
        ip: Optional[IPAddress | str] = None,
        options: Optional[TcpOptions] = None,
    ) -> Listener:
        address = as_address(ip) if ip is not None else None
        key = (address, port)
        if key in self.listeners:
            raise TcpError(f"tcp port {port} (ip={address}) already listening")
        listener = Listener(self, port, address, options or self.options)
        self.listeners[key] = listener
        return listener

    def remove_listener(self, listener: Listener) -> None:
        self.listeners = {
            key: l for key, l in self.listeners.items() if l is not listener
        }

    # -- demux ---------------------------------------------------------------

    def _receive(self, packet: IPPacket) -> None:
        segment = packet.payload
        if not isinstance(segment, TCPSegment):
            return
        self.segments_demuxed += 1
        key = (packet.dst, segment.dst_port, packet.src, segment.src_port)
        conn = self.connections.get(key)
        if conn is not None:
            conn.segment_arrived(segment)
            return
        listener = self.listeners.get((packet.dst, segment.dst_port))
        if listener is None:
            listener = self.listeners.get((None, segment.dst_port))
        if (
            listener is not None
            and not listener.closed
            and listener.accept_new
            and segment.syn
            and not segment.has_ack
        ):
            self._spawn_from_syn(listener, packet, segment)
            return
        if listener is not None and listener.silent_on_unknown:
            if listener.on_unknown_segment is not None:
                listener.on_unknown_segment(packet, segment)
            return
        if not segment.rst:
            self._send_rst_for(packet, segment)

    def _spawn_from_syn(
        self, listener: Listener, packet: IPPacket, segment: TCPSegment
    ) -> None:
        local_ip = packet.dst
        remote_ip = packet.src
        nic = self.host.kernel.route_lookup(remote_ip)
        mtu = nic.mtu if nic is not None else 1500
        opts = listener.options
        mss = opts.effective_mss(mtu)
        policy = listener.iss_policy or self.default_iss
        iss = policy(local_ip, listener.port, remote_ip, segment.src_port)
        conn = TcpConnection(
            self, local_ip, listener.port, remote_ip, segment.src_port, opts, mss, iss
        )
        conn._listener = listener
        self.connections[(local_ip, listener.port, remote_ip, segment.src_port)] = conn
        if listener.configure_connection is not None:
            listener.configure_connection(conn)
        conn.open_passive(segment)

    def connection_established(self, conn: TcpConnection) -> None:
        """Server-side connection reached ESTABLISHED."""
        listener = getattr(conn, "_listener", None)
        if listener is not None and not listener.closed:
            listener.connections_accepted += 1
            if listener.on_accept is not None:
                listener.on_accept(conn)

    def connection_closed(self, conn: TcpConnection) -> None:
        key = (conn.local_ip, conn.local_port, conn.remote_ip, conn.remote_port)
        if self.connections.get(key) is conn:
            del self.connections[key]

    # -- wire ---------------------------------------------------------------

    def send_segment(self, conn: TcpConnection, segment: TCPSegment) -> None:
        packet = IPPacket(
            src=conn.local_ip,
            dst=conn.remote_ip,
            protocol=Protocol.TCP,
            payload=segment,
        )
        self.host.kernel.send_ip(packet)

    def _send_rst_for(self, packet: IPPacket, segment: TCPSegment) -> None:
        self.resets_sent += 1
        if segment.has_ack:
            seq, ack, flags = segment.ack, 0, FLAG_RST
        else:
            seq = 0
            ack = seq_add(segment.seq, segment.seq_span)
            flags = FLAG_RST | FLAG_ACK
        rst = TCPSegment(
            src_port=segment.dst_port,
            dst_port=segment.src_port,
            seq=seq,
            ack=ack,
            flags=flags,
            window=0,
        )
        self.host.kernel.send_ip(
            IPPacket(src=packet.dst, dst=packet.src, protocol=Protocol.TCP, payload=rst)
        )
