"""Send and receive buffers for the TCP stack.

All offsets here are *stream offsets*: unbounded integers counting
payload bytes from the start of the connection (offset 0 is the first
payload byte after the SYN).  The TCB converts to 32-bit wire sequence
numbers at the edge.

The receive path is split in two stages on purpose:

    segments --> Reassembler (contiguous "staged" bytes)
             --> deposit --> SocketBuffer (readable by the application)

Plain TCP deposits staged bytes immediately; HydraNet-FT's ft-TCP gates
the deposit on the acknowledgement channel (paper §4.3), which is why
the stage boundary exists.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from collections import deque
from typing import Optional


class BufferError(RuntimeError):
    pass


class SendBuffer:
    """Outbound byte stream with retransmission storage.

    Data below ``base`` (the cumulative-ACK point) is discarded; data
    between ``base`` and ``end`` is retained for retransmission.  When
    ``preserve_boundaries`` is set, reads never span an application
    write boundary — each write becomes its own segment (the paper's
    measurement mode).
    """

    def __init__(self, capacity: int, preserve_boundaries: bool = False):
        self.capacity = capacity
        self.preserve_boundaries = preserve_boundaries
        # Parallel arrays: chunk start offsets (sorted, bisect-indexed
        # by `read`) and the chunk bytes.  `_head` is the index of the
        # first retained chunk; acked prefixes are trimmed lazily so
        # `ack_to` never pays a per-chunk list shift.
        self._starts: list[int] = []
        self._chunks: list[bytes] = []
        self._head = 0
        self._base = 0  # lowest retained offset
        self._end = 0  # next append offset

    @property
    def base(self) -> int:
        return self._base

    @property
    def end(self) -> int:
        return self._end

    @property
    def buffered(self) -> int:
        return self._end - self._base

    @property
    def free_space(self) -> int:
        return max(0, self.capacity - self.buffered)

    def append(self, data: bytes) -> int:
        """Append as much of ``data`` as fits; returns bytes accepted."""
        accept = min(len(data), self.free_space)
        if accept == 0:
            return 0
        if accept == len(data) and isinstance(data, bytes):
            chunk = data  # whole-buffer append of immutable bytes: no copy
        else:
            chunk = bytes(data[:accept])
        self._starts.append(self._end)
        self._chunks.append(chunk)
        self._end += accept
        return accept

    def read(self, offset: int, max_len: int) -> bytes:
        """Bytes starting at ``offset``, up to ``max_len`` (less when
        boundary preservation stops at a write boundary)."""
        if offset < self._base:
            raise BufferError(f"offset {offset} below base {self._base}")
        if offset >= self._end or max_len <= 0:
            return b""
        starts = self._starts
        chunks = self._chunks
        # Last chunk whose start is <= offset; chunks are contiguous, so
        # it contains `offset`.
        i = bisect_right(starts, offset, self._head) - 1
        chunk = chunks[i]
        piece = chunk[offset - starts[i] : offset - starts[i] + max_len]
        if self.preserve_boundaries or len(piece) == max_len or offset + len(piece) == self._end:
            return piece
        pieces = [piece]
        remaining = max_len - len(piece)
        n = len(chunks)
        i += 1
        while remaining > 0 and i < n:
            chunk = chunks[i]
            if len(chunk) <= remaining:
                pieces.append(chunk)
                remaining -= len(chunk)
            else:
                pieces.append(chunk[:remaining])
                remaining = 0
            i += 1
        return b"".join(pieces)

    def ack_to(self, offset: int) -> None:
        """Discard data below ``offset`` (cumulative ACK)."""
        if offset > self._end:
            raise BufferError(f"ack beyond data: {offset} > {self._end}")
        if offset <= self._base:
            return
        self._base = offset
        starts, chunks = self._starts, self._chunks
        head, n = self._head, len(chunks)
        while head < n and starts[head] + len(chunks[head]) <= offset:
            head += 1
        self._head = head
        # Compact once the dead prefix dominates the arrays.
        if head > 32 and head * 2 >= n:
            del starts[:head]
            del chunks[:head]
            self._head = 0


class Reassembler:
    """Receive-side segment reassembly.

    Produces the *staged* contiguous byte stream; out-of-order segments
    wait in an interval map.  Overlaps and duplicates (retransmissions)
    are tolerated and clipped.
    """

    def __init__(self):
        self._staged: deque[bytes] = deque()
        self._staged_size = 0
        self._in_order_end = 0  # next expected stream offset
        self._take_point = 0  # offset of first staged byte
        # Disjoint out-of-order fragments: offset -> bytes, with the
        # offsets mirrored in a sorted list so inserts, drains, and
        # SACK-block builds never re-sort the whole map.
        self._fragments: dict[int, bytes] = {}
        self._frag_offsets: list[int] = []
        self._ooo_bytes = 0
        self.duplicate_bytes = 0

    @property
    def in_order_end(self) -> int:
        return self._in_order_end

    @property
    def staged_bytes(self) -> int:
        return self._staged_size

    @property
    def take_point(self) -> int:
        return self._take_point

    @property
    def out_of_order_bytes(self) -> int:
        return self._ooo_bytes

    def out_of_order_ranges(self) -> list[tuple[int, int]]:
        """Disjoint [start, end) stream ranges held beyond the in-order
        point — the material of SACK blocks."""
        ranges: list[tuple[int, int]] = []
        fragments = self._fragments
        for offset in self._frag_offsets:
            end = offset + len(fragments[offset])
            if ranges and ranges[-1][1] == offset:
                ranges[-1] = (ranges[-1][0], end)
            else:
                ranges.append((offset, end))
        return ranges

    def add(self, offset: int, data: bytes) -> int:
        """Insert a segment's payload at ``offset``.  Returns the number
        of new in-order bytes made available."""
        if not data:
            return 0
        end = offset + len(data)
        if end <= self._in_order_end:
            self.duplicate_bytes += len(data)
            return 0
        if offset < self._in_order_end:
            self.duplicate_bytes += self._in_order_end - offset
            data = data[self._in_order_end - offset :]
            offset = self._in_order_end
        self._insert_fragment(offset, data)
        return self._drain_in_order()

    def _insert_fragment(self, offset: int, data: bytes) -> None:
        """Merge ``data`` into the disjoint fragment map, clipping
        overlap with existing fragments (existing bytes win — they are
        identical in honest TCP anyway)."""
        end = offset + len(data)
        fragments = self._fragments
        offsets = self._frag_offsets
        # First existing fragment that can overlap [offset, end): start
        # at the last fragment beginning at or before `offset` (it may
        # reach past `offset`), found by bisection instead of a scan.
        i = bisect_right(offsets, offset) - 1
        if i >= 0:
            frag_off = offsets[i]
            if frag_off + len(fragments[frag_off]) <= offset:
                i += 1
        else:
            i = 0
        inserts: list[tuple[int, bytes]] = []
        while offset < end and i < len(offsets):
            frag_off = offsets[i]
            if frag_off >= end:
                break
            frag_end = frag_off + len(fragments[frag_off])
            if frag_end <= offset:
                i += 1
                continue
            # Overlap: keep the non-overlapping head, step past it.
            if offset < frag_off:
                inserts.append((offset, data[: frag_off - offset]))
            overlap = min(end, frag_end) - max(offset, frag_off)
            self.duplicate_bytes += max(0, overlap)
            new_offset = frag_end
            data = data[max(0, new_offset - offset) :]
            offset = new_offset
            i += 1
        if offset < end and data:
            inserts.append((offset, data))
        for ins_off, piece in inserts:
            fragments[ins_off] = piece
            insort(offsets, ins_off)
            self._ooo_bytes += len(piece)

    def _drain_in_order(self) -> int:
        offsets = self._frag_offsets
        fragments = self._fragments
        expected = self._in_order_end
        k = 0
        pieces: list[bytes] = []
        while k < len(offsets) and offsets[k] == expected:
            frag = fragments.pop(expected)
            pieces.append(frag)
            expected += len(frag)
            k += 1
        if not k:
            return 0
        del offsets[:k]
        gained = expected - self._in_order_end
        self._in_order_end = expected
        self._staged_size += gained
        self._ooo_bytes -= gained
        # Coalesce fragments that drain together into one staged chunk
        # so downstream take()/deposit handle fewer, larger pieces.
        self._staged.append(pieces[0] if k == 1 else b"".join(pieces))
        return gained

    def take(self, max_bytes: Optional[int] = None) -> bytes:
        """Remove and return up to ``max_bytes`` staged bytes (all of
        them when None)."""
        if max_bytes is None:
            max_bytes = self._staged_size
        pieces: list[bytes] = []
        remaining = max_bytes
        while remaining > 0 and self._staged:
            chunk = self._staged.popleft()
            if len(chunk) <= remaining:
                pieces.append(chunk)
                remaining -= len(chunk)
            else:
                pieces.append(chunk[:remaining])
                self._staged.appendleft(chunk[remaining:])
                remaining = 0
        taken = b"".join(pieces)
        self._staged_size -= len(taken)
        self._take_point += len(taken)
        return taken


class SocketBuffer:
    """Deposited, application-readable bytes (the BSD so_rcv analogue)."""

    def __init__(self):
        self._chunks: deque[bytes] = deque()
        self._size = 0
        self.total_deposited = 0
        self.total_read = 0

    @property
    def size(self) -> int:
        return self._size

    def deposit(self, data: bytes) -> None:
        if data:
            self._chunks.append(data)
            self._size += len(data)
            self.total_deposited += len(data)

    def read(self, max_bytes: Optional[int] = None) -> bytes:
        if max_bytes is None:
            max_bytes = self._size
        pieces: list[bytes] = []
        remaining = max_bytes
        while remaining > 0 and self._chunks:
            chunk = self._chunks.popleft()
            if len(chunk) <= remaining:
                pieces.append(chunk)
                remaining -= len(chunk)
            else:
                pieces.append(chunk[:remaining])
                self._chunks.appendleft(chunk[remaining:])
                remaining = 0
        data = b"".join(pieces)
        self._size -= len(data)
        self.total_read += len(data)
        return data
