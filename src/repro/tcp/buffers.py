"""Send and receive buffers for the TCP stack.

All offsets here are *stream offsets*: unbounded integers counting
payload bytes from the start of the connection (offset 0 is the first
payload byte after the SYN).  The TCB converts to 32-bit wire sequence
numbers at the edge.

The receive path is split in two stages on purpose:

    segments --> Reassembler (contiguous "staged" bytes)
             --> deposit --> SocketBuffer (readable by the application)

Plain TCP deposits staged bytes immediately; HydraNet-FT's ft-TCP gates
the deposit on the acknowledgement channel (paper §4.3), which is why
the stage boundary exists.
"""

from __future__ import annotations

from collections import deque
from typing import Optional


class BufferError(RuntimeError):
    pass


class SendBuffer:
    """Outbound byte stream with retransmission storage.

    Data below ``base`` (the cumulative-ACK point) is discarded; data
    between ``base`` and ``end`` is retained for retransmission.  When
    ``preserve_boundaries`` is set, reads never span an application
    write boundary — each write becomes its own segment (the paper's
    measurement mode).
    """

    def __init__(self, capacity: int, preserve_boundaries: bool = False):
        self.capacity = capacity
        self.preserve_boundaries = preserve_boundaries
        self._chunks: deque[tuple[int, bytes]] = deque()
        self._base = 0  # lowest retained offset
        self._end = 0  # next append offset

    @property
    def base(self) -> int:
        return self._base

    @property
    def end(self) -> int:
        return self._end

    @property
    def buffered(self) -> int:
        return self._end - self._base

    @property
    def free_space(self) -> int:
        return max(0, self.capacity - self.buffered)

    def append(self, data: bytes) -> int:
        """Append as much of ``data`` as fits; returns bytes accepted."""
        accept = min(len(data), self.free_space)
        if accept == 0:
            return 0
        chunk = bytes(data[:accept])
        self._chunks.append((self._end, chunk))
        self._end += accept
        return accept

    def read(self, offset: int, max_len: int) -> bytes:
        """Bytes starting at ``offset``, up to ``max_len`` (less when
        boundary preservation stops at a write boundary)."""
        if offset < self._base:
            raise BufferError(f"offset {offset} below base {self._base}")
        if offset >= self._end or max_len <= 0:
            return b""
        pieces: list[bytes] = []
        remaining = max_len
        for start, chunk in self._chunks:
            chunk_end = start + len(chunk)
            if chunk_end <= offset:
                continue
            begin = max(0, offset - start)
            piece = chunk[begin : begin + remaining]
            if self.preserve_boundaries:
                return piece
            pieces.append(piece)
            remaining -= len(piece)
            offset += len(piece)
            if remaining == 0:
                break
        return b"".join(pieces)

    def ack_to(self, offset: int) -> None:
        """Discard data below ``offset`` (cumulative ACK)."""
        if offset > self._end:
            raise BufferError(f"ack beyond data: {offset} > {self._end}")
        if offset <= self._base:
            return
        self._base = offset
        while self._chunks:
            start, chunk = self._chunks[0]
            if start + len(chunk) <= offset:
                self._chunks.popleft()
            else:
                break


class Reassembler:
    """Receive-side segment reassembly.

    Produces the *staged* contiguous byte stream; out-of-order segments
    wait in an interval map.  Overlaps and duplicates (retransmissions)
    are tolerated and clipped.
    """

    def __init__(self):
        self._staged: deque[bytes] = deque()
        self._staged_size = 0
        self._in_order_end = 0  # next expected stream offset
        self._take_point = 0  # offset of first staged byte
        # Disjoint, sorted out-of-order fragments: offset -> bytes.
        self._fragments: dict[int, bytes] = {}
        self.duplicate_bytes = 0

    @property
    def in_order_end(self) -> int:
        return self._in_order_end

    @property
    def staged_bytes(self) -> int:
        return self._staged_size

    @property
    def take_point(self) -> int:
        return self._take_point

    @property
    def out_of_order_bytes(self) -> int:
        return sum(len(f) for f in self._fragments.values())

    def out_of_order_ranges(self) -> list[tuple[int, int]]:
        """Disjoint [start, end) stream ranges held beyond the in-order
        point — the material of SACK blocks."""
        ranges: list[tuple[int, int]] = []
        for offset in sorted(self._fragments):
            end = offset + len(self._fragments[offset])
            if ranges and ranges[-1][1] == offset:
                ranges[-1] = (ranges[-1][0], end)
            else:
                ranges.append((offset, end))
        return ranges

    def add(self, offset: int, data: bytes) -> int:
        """Insert a segment's payload at ``offset``.  Returns the number
        of new in-order bytes made available."""
        if not data:
            return 0
        end = offset + len(data)
        if end <= self._in_order_end:
            self.duplicate_bytes += len(data)
            return 0
        if offset < self._in_order_end:
            self.duplicate_bytes += self._in_order_end - offset
            data = data[self._in_order_end - offset :]
            offset = self._in_order_end
        self._insert_fragment(offset, data)
        return self._drain_in_order()

    def _insert_fragment(self, offset: int, data: bytes) -> None:
        """Merge ``data`` into the disjoint fragment map, clipping
        overlap with existing fragments (existing bytes win — they are
        identical in honest TCP anyway)."""
        end = offset + len(data)
        for frag_off in sorted(self._fragments):
            if offset >= end:
                return
            frag = self._fragments[frag_off]
            frag_end = frag_off + len(frag)
            if frag_end <= offset or frag_off >= end:
                continue
            # Overlap: keep the non-overlapping head, recurse past it.
            if offset < frag_off:
                self._fragments[offset] = data[: frag_off - offset]
            overlap = min(end, frag_end) - max(offset, frag_off)
            self.duplicate_bytes += max(0, overlap)
            new_offset = frag_end
            data = data[max(0, new_offset - offset) :]
            offset = new_offset
        if offset < end and data:
            self._fragments[offset] = data

    def _drain_in_order(self) -> int:
        gained = 0
        while self._in_order_end in self._fragments:
            frag = self._fragments.pop(self._in_order_end)
            self._staged.append(frag)
            self._staged_size += len(frag)
            self._in_order_end += len(frag)
            gained += len(frag)
        return gained

    def take(self, max_bytes: Optional[int] = None) -> bytes:
        """Remove and return up to ``max_bytes`` staged bytes (all of
        them when None)."""
        if max_bytes is None:
            max_bytes = self._staged_size
        pieces: list[bytes] = []
        remaining = max_bytes
        while remaining > 0 and self._staged:
            chunk = self._staged.popleft()
            if len(chunk) <= remaining:
                pieces.append(chunk)
                remaining -= len(chunk)
            else:
                pieces.append(chunk[:remaining])
                self._staged.appendleft(chunk[remaining:])
                remaining = 0
        taken = b"".join(pieces)
        self._staged_size -= len(taken)
        self._take_point += len(taken)
        return taken


class SocketBuffer:
    """Deposited, application-readable bytes (the BSD so_rcv analogue)."""

    def __init__(self):
        self._chunks: deque[bytes] = deque()
        self._size = 0
        self.total_deposited = 0
        self.total_read = 0

    @property
    def size(self) -> int:
        return self._size

    def deposit(self, data: bytes) -> None:
        if data:
            self._chunks.append(data)
            self._size += len(data)
            self.total_deposited += len(data)

    def read(self, max_bytes: Optional[int] = None) -> bytes:
        if max_bytes is None:
            max_bytes = self._size
        pieces: list[bytes] = []
        remaining = max_bytes
        while remaining > 0 and self._chunks:
            chunk = self._chunks.popleft()
            if len(chunk) <= remaining:
                pieces.append(chunk)
                remaining -= len(chunk)
            else:
                pieces.append(chunk[:remaining])
                self._chunks.appendleft(chunk[remaining:])
                remaining = 0
        data = b"".join(pieces)
        self._size -= len(data)
        self.total_read += len(data)
        return data
