"""The TCP connection state machine (transmission control block).

This is a reasonably complete event-driven TCP: three-way handshake,
sliding-window data transfer with cumulative and duplicate ACKs, RTO
retransmission with Karn's rule and exponential backoff, fast
retransmit / fast recovery (Reno), delayed ACKs, Nagle, zero-window
persist probes, and the full close/TIME_WAIT dance.

HydraNet-FT hooks (paper §4):

* ``deposit_limit`` — callable returning the highest stream offset
  (exclusive) that may be *deposited* into the socket buffer; the
  ft-TCP backup chain drives this from acknowledgement-channel
  messages.  ACKs we emit only ever cover deposited data.
* ``transmit_limit`` — callable returning the highest stream offset
  (exclusive) that may be *transmitted*; gates outgoing data (and FIN)
  the same way.
* ``output_filter`` — inspects every outgoing segment; returning True
  suppresses the actual send (backups report flow-control fields up the
  acknowledgement channel instead of talking to the client).
* ``on_deposit`` / ``on_retransmission_observed`` — notifications used
  by the ft layer and the failure detector.

Internally all positions are unbounded *stream offsets* (payload byte
counts from the start of the connection); conversion to wrapped 32-bit
wire sequence numbers happens only when building/parsing segments.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Callable, Optional

from repro.netsim.packet import (
    FLAG_ACK,
    FLAG_FIN,
    FLAG_PSH,
    FLAG_RST,
    FLAG_SYN,
    TCPSegment,
)
from repro.netsim.simulator import Timer

from .buffers import Reassembler, SendBuffer, SocketBuffer
from .congestion import CongestionControl
from .options import TcpOptions
from .sack import SackScoreboard
from .seqnum import seq_add, seq_diff
from .timers import RtoEstimator

if TYPE_CHECKING:
    from .stack import TcpStack

MAX_WINDOW = 65535

# Inline mod-2**32 sequence arithmetic for the per-segment hot paths:
# `x & _SEQ_MASK` equals `x % 2**32` for every int, and
# `((a - b + _SEQ_HALF) & _SEQ_MASK) - _SEQ_HALF` is seq_diff(a, b) —
# the seqnum helpers stay the readable public vocabulary.
_SEQ_MASK = 0xFFFFFFFF
_SEQ_HALF = 0x80000000


class TcpState(enum.Enum):
    CLOSED = "CLOSED"
    SYN_SENT = "SYN_SENT"
    SYN_RCVD = "SYN_RCVD"
    ESTABLISHED = "ESTABLISHED"
    FIN_WAIT_1 = "FIN_WAIT_1"
    FIN_WAIT_2 = "FIN_WAIT_2"
    CLOSE_WAIT = "CLOSE_WAIT"
    CLOSING = "CLOSING"
    LAST_ACK = "LAST_ACK"
    TIME_WAIT = "TIME_WAIT"


class TcpError(RuntimeError):
    pass


class TcpConnection:
    """One end of a TCP connection."""

    def __init__(
        self,
        stack: "TcpStack",
        local_ip,
        local_port: int,
        remote_ip,
        remote_port: int,
        options: TcpOptions,
        mss: int,
        iss: int,
    ):
        self.stack = stack
        self.sim = stack.sim
        self.local_ip = local_ip
        self.local_port = local_port
        self.remote_ip = remote_ip
        self.remote_port = remote_port
        self.options = options
        self.mss = mss
        self.state = TcpState.CLOSED

        # --- send side ---
        self.iss = iss
        self.snd_una = 0  # lowest unacknowledged stream offset
        self.snd_nxt = 0  # next stream offset to send
        self.snd_max = 0  # highest stream offset ever sent
        self.peer_window = 0
        self.send_buffer = SendBuffer(
            options.send_buffer_size,
            preserve_boundaries=options.segment_per_write,
        )
        self.fin_queued = False
        self.fin_sent = False
        self.fin_acked = False
        self.syn_acked = False
        #: RFC 2018, negotiated on the SYN (both ends must enable).
        self.sack_enabled = False
        self.scoreboard = SackScoreboard()

        # --- receive side ---
        self.irs: Optional[int] = None
        self.reassembler = Reassembler()
        self.socket_buffer = SocketBuffer()
        self.peer_fin_offset: Optional[int] = None
        self.fin_deposited = False
        # Highest window right-edge ever advertised (stream offset).
        # RFC 793/1122: the edge must never move left, even when the
        # deposit gate holds staged bytes that count against the buffer.
        self._rcv_adv = 0

        # --- machinery ---
        self.rto = RtoEstimator(options)
        self.congestion = CongestionControl(options, mss)
        self.rtx_timer = Timer(self.sim, self._on_rto)
        self.ack_timer = Timer(self.sim, self._on_delayed_ack)
        self.persist_timer = Timer(self.sim, self._on_persist)
        self.time_wait_timer = Timer(self.sim, self._on_time_wait_done)
        self._retries = 0
        self._persist_backoff = 0
        self._dupacks = 0
        # Outstanding RTT measurement: (stream offset sample covers, sent time).
        self._rtt_sample: Optional[tuple[int, float]] = None
        self._syn_time: Optional[float] = None
        self._syn_retransmitted = False
        self._segs_since_ack = 0

        # --- statistics ---
        self.segments_sent = 0
        self.segments_received = 0
        self.retransmitted_segments = 0
        self.suppressed_segments = 0
        self.bytes_sent = 0
        self.bytes_received = 0

        # --- application callbacks ---
        self.on_established: Optional[Callable[[], None]] = None
        self.on_data: Optional[Callable[[bytes], None]] = None
        self.on_remote_close: Optional[Callable[[], None]] = None
        self.on_closed: Optional[Callable[[str], None]] = None
        #: Called when the send path may accept more data (ACK freed space).
        self.on_send_space: Optional[Callable[[], None]] = None

        # --- HydraNet-FT hooks ---
        #: Replicated-service mode (set by the ft layer).  A cumulative
        #: ACK beyond the locally (re)generated response is clamped to
        #: it instead of ignored: the primary may have transmitted
        #: stream bytes this replica has not regenerated yet, so such
        #: an ACK is valid progress — dropping it wedges ``snd_una``
        #: (and with it the send buffer) forever on a joiner whose
        #: catch-up replay lags the client's ack point.
        self.clamp_future_acks = False
        self.deposit_limit: Optional[Callable[[], Optional[int]]] = None
        self.transmit_limit: Optional[Callable[[], Optional[int]]] = None
        self.output_filter: Optional[Callable[[TCPSegment], bool]] = None
        self.on_deposit: Optional[Callable[[int], None]] = None
        #: Like ``on_deposit`` but with the bytes: called as
        #: ``on_deposit_data(start_offset, data)`` for every deposit —
        #: the ft layer's catch-up log records the client stream here.
        self.on_deposit_data: Optional[Callable[[int, bytes], None]] = None
        self.on_retransmission_observed: Optional[Callable[[TCPSegment], None]] = None
        #: Fired when this end retransmits (its data is not being
        #: acknowledged) — the other half of the paper's failure signal:
        #: with a dead primary, a pushing server sees no ACK progress.
        self.on_retransmit: Optional[Callable[[], None]] = None

        self._closed_reported = False

    # ------------------------------------------------------------------
    # wire <-> stream conversion
    # ------------------------------------------------------------------

    def _seq_for(self, offset: int) -> int:
        """Wire sequence number of stream offset ``offset`` (send side)."""
        return seq_add(self.iss, 1 + offset)

    def _offset_for_ack(self, ack: int) -> int:
        """Stream offset acknowledged by wire ack number (send side).
        Counts our FIN as one position past the last payload byte."""
        return seq_diff(ack, seq_add(self.iss, 1))

    def _offset_for_seq(self, seq: int) -> int:
        """Receive-side stream offset of wire sequence number."""
        assert self.irs is not None
        return seq_diff(seq, seq_add(self.irs, 1))

    @property
    def ack_point(self) -> int:
        """Deposited stream offset — the basis of the ACKs we send."""
        return self.reassembler.take_point

    def _wire_ack(self) -> int:
        """The ACK number to put on outgoing segments: everything
        deposited, plus one for the peer's FIN once it is consumed."""
        if self.irs is None:
            return 0
        extra = 1 if self.fin_deposited else 0
        return seq_add(self.irs, 1 + self.ack_point + extra)

    def advertised_window(self) -> int:
        """Receive window: buffer capacity minus held bytes (staged
        bytes awaiting the deposit gate count too — the paper's
        "conservative" kernel), but the right edge never retreats."""
        held = self.reassembler.staged_bytes + self.socket_buffer.size
        win = max(0, min(MAX_WINDOW, self.options.recv_buffer_size - held))
        if self.options.rfc_window_edge:
            floor = self._rcv_adv - self.ack_point
            win = max(win, min(MAX_WINDOW, floor))
        self._rcv_adv = max(self._rcv_adv, self.ack_point + win)
        return win

    def _window_right_edge(self) -> int:
        """Stream offset past which arriving data is dropped."""
        if self.options.rfc_window_edge:
            return self._rcv_adv
        held = self.reassembler.staged_bytes + self.socket_buffer.size
        win = max(0, min(MAX_WINDOW, self.options.recv_buffer_size - held))
        return self.ack_point + win

    # ------------------------------------------------------------------
    # application interface
    # ------------------------------------------------------------------

    def open_active(self) -> None:
        """Send the initial SYN (client side)."""
        if self.state != TcpState.CLOSED:
            raise TcpError(f"cannot connect in state {self.state}")
        self.state = TcpState.SYN_SENT
        self._send_syn()

    def open_passive(self, syn: TCPSegment) -> None:
        """Process the client's SYN (server side) and reply SYN-ACK."""
        if self.state != TcpState.CLOSED:
            raise TcpError(f"cannot accept in state {self.state}")
        self.irs = syn.seq
        self.peer_window = syn.window
        self.sack_enabled = self.options.sack and syn.sack_permitted
        self.state = TcpState.SYN_RCVD
        self._send_syn()

    def send(self, data: bytes) -> int:
        """Queue application data; returns bytes accepted (buffer may be
        full — register ``on_send_space`` to learn when to retry)."""
        if self.state not in (
            TcpState.ESTABLISHED,
            TcpState.CLOSE_WAIT,
            TcpState.SYN_SENT,
            TcpState.SYN_RCVD,
        ):
            raise TcpError(f"cannot send in state {self.state}")
        if self.fin_queued:
            raise TcpError("cannot send after close()")
        accepted = self.send_buffer.append(data)
        self._try_send()
        return accepted

    def recv(self, max_bytes: Optional[int] = None) -> bytes:
        data = self.socket_buffer.read(max_bytes)
        if data:
            self._window_opened()
        return data

    def close(self) -> None:
        """Graceful close: FIN after all queued data."""
        if self.fin_queued or self.state in (TcpState.CLOSED, TcpState.TIME_WAIT):
            return
        self.fin_queued = True
        self._try_send()

    def abort(self) -> None:
        """Hard close: RST to the peer, everything discarded."""
        if self.state not in (TcpState.CLOSED,) and self.irs is not None:
            self._emit(self._make_segment(FLAG_RST | FLAG_ACK))
        self._teardown("reset")

    @property
    def readable_bytes(self) -> int:
        return self.socket_buffer.size

    @property
    def flight_size(self) -> int:
        return self.snd_nxt - self.snd_una

    # ------------------------------------------------------------------
    # ft-TCP gate notifications
    # ------------------------------------------------------------------

    def gates_changed(self) -> None:
        """Re-evaluate deposit and transmit gates (called by the ft
        layer when acknowledgement-channel state advances)."""
        progressed = self._try_deposit()
        if progressed and self.irs is not None and self.state not in (
            TcpState.CLOSED,
            TcpState.TIME_WAIT,
        ):
            # Deposit advanced on acknowledgement-channel progress: this
            # is the moment the paper's primary "replies to the client"
            # (and a backup forwards its progress up the chain).
            self._send_ack_now()
        self._try_send()

    def kick(self) -> None:
        """Nudge the connection after a fail-over promotion: re-ACK the
        client immediately, re-evaluate gates, and make sure pending
        data is on a retransmission timer so it reaches the wire."""
        if self.state in (TcpState.CLOSED, TcpState.SYN_SENT):
            return
        self.gates_changed()
        if self.irs is not None and self.state != TcpState.TIME_WAIT:
            self._send_ack_now()
        needs_rtx = self.snd_una < self.snd_nxt or (self.fin_sent and not self.fin_acked)
        if needs_rtx:
            self._retransmit_head()
            if not self.rtx_timer.running:
                self.rtx_timer.start(self.rto.rto)

    def kill_silently(self) -> None:
        """Tear down without emitting anything (a replica removed from
        the set must go silent, not RST the shared client connection)."""
        self._teardown("killed")

    # ------------------------------------------------------------------
    # segment construction / emission
    # ------------------------------------------------------------------

    def _sack_blocks(self) -> tuple:
        if not self.sack_enabled or self.irs is None:
            return ()
        base = seq_add(self.irs, 1)
        ranges = self.reassembler.out_of_order_ranges()[-3:]
        return tuple(
            (seq_add(base, lo), seq_add(base, hi)) for lo, hi in ranges
        )

    def _make_segment(
        self, flags: int, seq: Optional[int] = None, data: bytes = b""
    ) -> TCPSegment:
        # _seq_for / _wire_ack / _sack_blocks inlined (per-segment path).
        if seq is None:
            seq = (self.iss + 1 + self.snd_nxt) & _SEQ_MASK
        if flags & FLAG_ACK:
            irs = self.irs
            if irs is None:
                ack = 0
            else:
                extra = 1 if self.fin_deposited else 0
                ack = (irs + 1 + self.reassembler.take_point + extra) & _SEQ_MASK
            sack = self._sack_blocks() if self.sack_enabled else ()
        else:
            ack = 0
            sack = ()
        return TCPSegment(
            src_port=self.local_port,
            dst_port=self.remote_port,
            seq=seq,
            ack=ack,
            flags=flags,
            window=self.advertised_window(),
            data=data,
            sack_blocks=sack,
        )

    def _emit(self, segment: TCPSegment) -> None:
        self.segments_sent += 1
        if segment.flags & FLAG_ACK:
            self.ack_timer.stop()
            self._segs_since_ack = 0
        if self.output_filter is not None and self.output_filter(segment):
            self.suppressed_segments += 1
            return
        self.stack.send_segment(self, segment)

    def _send_syn(self) -> None:
        flags = FLAG_SYN
        if self.state == TcpState.SYN_RCVD:
            flags |= FLAG_ACK
        seq = self.iss
        segment = TCPSegment(
            src_port=self.local_port,
            dst_port=self.remote_port,
            seq=seq,
            ack=seq_add(self.irs, 1) if flags & FLAG_ACK else 0,
            flags=flags,
            window=self.advertised_window(),
            sack_permitted=self.options.sack,
        )
        if self._syn_time is None:
            self._syn_time = self.sim.now
        self.segments_sent += 1
        if not (self.output_filter is not None and self.output_filter(segment)):
            self.stack.send_segment(self, segment)
        else:
            self.suppressed_segments += 1
        self.rtx_timer.start(self.rto.rto)

    def _send_ack_now(self) -> None:
        if self.irs is None:
            return
        self._emit(self._make_segment(FLAG_ACK))

    def _schedule_ack(self, immediate: bool, countable: bool = True) -> None:
        if immediate or (not self.options.delayed_ack and countable):
            self._send_ack_now()
            return
        if countable:
            self._segs_since_ack += 1
            if self._segs_since_ack >= 2:
                self._send_ack_now()
                return
        if not self.ack_timer.running:
            self.ack_timer.start(self.options.delayed_ack_timeout)

    def _on_delayed_ack(self) -> None:
        if self._host_dead():
            return
        self._send_ack_now()

    def _window_opened(self) -> None:
        """App consumed data: advertise the bigger window if it matters."""
        if self.state in (TcpState.ESTABLISHED, TcpState.FIN_WAIT_1, TcpState.FIN_WAIT_2):
            if not self.ack_timer.running:
                self.ack_timer.start(self.options.delayed_ack_timeout)

    # ------------------------------------------------------------------
    # output path
    # ------------------------------------------------------------------

    def _transmit_ceiling(self) -> Optional[int]:
        if self.transmit_limit is None:
            return None
        return self.transmit_limit()

    def _try_send(self) -> None:
        if self.state in (
            TcpState.CLOSED,
            TcpState.SYN_SENT,
            TcpState.SYN_RCVD,
            TcpState.TIME_WAIT,
        ):
            return
        send_buffer = self.send_buffer
        options = self.options
        transmit_limit = self.transmit_limit
        while True:
            # Recomputed each iteration on purpose: emitting a segment
            # runs the ft output filter, which may move the gates.
            peer_window = self.peer_window
            window = self.congestion.window(peer_window if peer_window > 0 else 0)
            snd_nxt = self.snd_nxt
            usable = self.snd_una + window - snd_nxt
            available = send_buffer.end - snd_nxt
            if transmit_limit is not None:
                ceiling = transmit_limit()
                if ceiling is not None:
                    limited = ceiling - snd_nxt
                    if limited < available:
                        available = limited
            if available <= 0:
                break
            if usable <= 0:
                if peer_window == 0 and not self.rtx_timer.running:
                    self._start_persist()
                break
            n = min(usable, available, self.mss)
            if options.segment_per_write:
                # Measurement mode: a write is sent as one segment or
                # not at all — never sliced by the window edge.
                whole = send_buffer.read(snd_nxt, min(available, self.mss))
                if len(whole) > usable:
                    break
                data = whole
            else:
                data = send_buffer.read(snd_nxt, n)
            if not data:
                break
            if (
                options.nagle
                and len(data) < self.mss
                and self.snd_nxt > self.snd_una
                and not self.fin_queued
            ):
                break
            self._send_data_segment(snd_nxt, data)
        self._maybe_send_fin()

    def _send_data_segment(self, offset: int, data: bytes, retransmit: bool = False) -> None:
        flags = FLAG_ACK | FLAG_PSH
        segment = self._make_segment(
            flags, seq=(self.iss + 1 + offset) & _SEQ_MASK, data=data
        )
        end = offset + len(data)
        # After a go-back-N pointer reset, ordinary output below the
        # high-water mark is still a retransmission for Karn/statistics
        # purposes even though it advances snd_nxt.
        is_retransmission = retransmit or offset < self.snd_max
        if is_retransmission:
            self.retransmitted_segments += 1
            # Karn: a measurement covering retransmitted data is invalid.
            if self._rtt_sample is not None and self._rtt_sample[0] > offset:
                self._rtt_sample = None
        else:
            self.bytes_sent += len(data)
            if self._rtt_sample is None:
                self._rtt_sample = (end, self.sim.now)
        self._emit(segment)
        if not retransmit:
            self.snd_nxt = max(self.snd_nxt, end)
        self.snd_max = max(self.snd_max, self.snd_nxt)
        if not self.rtx_timer.running:
            self.rtx_timer.start(self.rto.rto)

    def _fin_offset(self) -> int:
        return self.send_buffer.end

    def _fin_allowed(self) -> bool:
        ceiling = self._transmit_ceiling()
        if ceiling is None:
            return True
        return ceiling > self._fin_offset()

    def _maybe_send_fin(self) -> None:
        if (
            not self.fin_queued
            or self.fin_sent
            or self.snd_nxt < self.send_buffer.end
            or not self._fin_allowed()
        ):
            return
        self.fin_sent = True
        segment = self._make_segment(
            FLAG_FIN | FLAG_ACK, seq=self._seq_for(self.snd_nxt)
        )
        self._emit(segment)
        if self.state == TcpState.ESTABLISHED:
            self.state = TcpState.FIN_WAIT_1
        elif self.state == TcpState.CLOSE_WAIT:
            self.state = TcpState.LAST_ACK
        if not self.rtx_timer.running:
            self.rtx_timer.start(self.rto.rto)

    # ------------------------------------------------------------------
    # timers
    # ------------------------------------------------------------------

    def _host_dead(self) -> bool:
        """Fail-stop: a crashed host's protocol timers are dead (the
        machine halted); they must not fire, reschedule, or queue work
        that could leak after a reboot."""
        return self.stack.host.crashed

    def _on_rto(self) -> None:
        if self.state == TcpState.CLOSED or self._host_dead():
            return
        self._retries += 1
        limit = (
            self.options.max_syn_retries
            if self.state in (TcpState.SYN_SENT, TcpState.SYN_RCVD)
            else self.options.max_retries
        )
        if self._retries > limit:
            self._teardown("timeout")
            return
        self.rto.on_timeout()
        if self.state in (TcpState.SYN_SENT, TcpState.SYN_RCVD):
            self._syn_retransmitted = True
            if self.on_retransmit is not None:
                self.on_retransmit()
            self._send_syn()
            return
        self.congestion.on_timeout(self.flight_size)
        self._dupacks = 0
        self.scoreboard.clear()  # RFC 2018: SACK info is advisory
        # Go-back-N (as in BSD tcp_output after a timeout): pull the
        # send pointer back so recovery proceeds ack-clocked from
        # snd_una instead of being wedged behind a large flight.
        self.snd_nxt = self.snd_una
        self._retransmit_head()
        self.rtx_timer.start(self.rto.rto)

    def _retransmit_head(self) -> None:
        if self.on_retransmit is not None:
            self.on_retransmit()
        if self.snd_una < self.send_buffer.end:
            start = self.snd_una
            limit = self.send_buffer.end
            if self.sack_enabled:
                hole = self.scoreboard.first_hole(self.snd_una, min(self.snd_max, limit))
                if hole is None:
                    start = None  # everything outstanding is sacked
                else:
                    start, hole_end = hole
                    limit = hole_end
            if start is not None:
                n = min(self.mss, limit - start)
                data = self.send_buffer.read(start, n)
                if data:
                    self._send_data_segment(start, data, retransmit=True)
                    return
        if self.fin_sent and not self.fin_acked:
            self.retransmitted_segments += 1
            self._emit(
                self._make_segment(
                    FLAG_FIN | FLAG_ACK, seq=self._seq_for(self._fin_offset())
                )
            )

    def _start_persist(self) -> None:
        if self.persist_timer.running:
            return
        delay = min(
            max(self.rto.rto * (2**self._persist_backoff), self.options.persist_min),
            self.options.persist_max,
        )
        self.persist_timer.start(delay)

    def _on_persist(self) -> None:
        if self._host_dead():
            return
        if self.state == TcpState.CLOSED or self.peer_window > 0:
            self._persist_backoff = 0
            return
        # Window probe: one byte of data past the window edge.
        if self.snd_nxt < self.send_buffer.end:
            data = self.send_buffer.read(self.snd_nxt, 1)
            if data:
                self._send_data_segment(self.snd_nxt, data[:1], retransmit=True)
        else:
            self._send_ack_now()
        self._persist_backoff += 1
        self._start_persist()

    def _on_time_wait_done(self) -> None:
        self._teardown("closed")

    # ------------------------------------------------------------------
    # input path
    # ------------------------------------------------------------------

    def segment_arrived(self, segment: TCPSegment) -> None:
        self.segments_received += 1
        state = self.state
        if state is TcpState.CLOSED:
            return
        flags = segment.flags
        if flags & FLAG_RST:
            self._handle_rst(segment)
            return
        if state is TcpState.SYN_SENT:
            self._handle_syn_sent(segment)
            return
        if state is TcpState.SYN_RCVD:
            self._handle_syn_rcvd(segment)
            if self.state not in (TcpState.ESTABLISHED,):
                return
            # Fall through: the ACK completing the handshake may carry data.
        if flags & FLAG_SYN:
            # Retransmitted SYN on an established connection: our
            # SYN-ACK or ACK was lost; re-acknowledge.
            self._send_ack_now()
            return
        if flags & FLAG_ACK:
            self._process_ack(segment)
        if self.state == TcpState.CLOSED:
            return
        self.peer_window = segment.window
        if self.persist_timer.running and segment.window > 0:
            self.persist_timer.stop()
            self._persist_backoff = 0
            self._try_send()
        self._process_payload(segment)
        self._try_send()

    # -- handshake states -------------------------------------------------

    def _handle_syn_sent(self, segment: TCPSegment) -> None:
        if not segment.syn:
            return
        self.irs = segment.seq
        self.peer_window = segment.window
        self.sack_enabled = self.options.sack and segment.sack_permitted
        if segment.has_ack and seq_diff(segment.ack, seq_add(self.iss, 1)) == 0:
            # SYN-ACK: handshake complete on our side.
            self.syn_acked = True
            self._retries = 0
            if self._syn_time is not None and not self._syn_retransmitted:
                self.rto.on_measurement(self.sim.now - self._syn_time)
            self.rtx_timer.stop()
            self.state = TcpState.ESTABLISHED
            self._send_ack_now()
            if self.on_established:
                self.on_established()
            self._try_send()
        # (Simultaneous open is not modelled.)

    def _handle_syn_rcvd(self, segment: TCPSegment) -> None:
        if segment.syn and not segment.has_ack:
            # Duplicate SYN: client did not see our SYN-ACK yet — a
            # client retransmission in the failure-estimator sense.
            if self.on_retransmission_observed is not None:
                self.on_retransmission_observed(segment)
            self._send_syn()
            return
        if segment.has_ack and seq_diff(segment.ack, seq_add(self.iss, 1)) >= 0:
            self.syn_acked = True
            self._retries = 0
            if self._syn_time is not None and not self._syn_retransmitted:
                self.rto.on_measurement(self.sim.now - self._syn_time)
            self.rtx_timer.stop()
            self.state = TcpState.ESTABLISHED
            self.peer_window = segment.window
            if self.on_established:
                self.on_established()
            self.stack.connection_established(self)

    # -- RST ---------------------------------------------------------------

    def _handle_rst(self, segment: TCPSegment) -> None:
        if self.state == TcpState.TIME_WAIT:
            # RFC 1337: ignore RSTs in TIME_WAIT (prevents TIME-WAIT
            # assassination by stray segments).
            return
        reason = "refused" if self.state == TcpState.SYN_SENT else "reset"
        self._teardown(reason)

    # -- ACK processing ------------------------------------------------------

    def _process_ack(self, segment: TCPSegment) -> None:
        if self.sack_enabled and segment.sack_blocks:
            base = seq_add(self.iss, 1)
            for left, right in segment.sack_blocks:
                self.scoreboard.record(seq_diff(left, base), seq_diff(right, base))
        # _offset_for_ack inlined: seq_diff(ack, iss + 1) in C arithmetic.
        acked = ((segment.ack - self.iss - 1 + _SEQ_HALF) & _SEQ_MASK) - _SEQ_HALF
        fin_point = self.send_buffer.end + 1 if self.fin_sent else None
        max_valid = fin_point if fin_point is not None else self.send_buffer.end
        if acked > max_valid:
            if not self.clamp_future_acks:
                # ACK for data we never sent — ignore.
                return
            acked = max_valid
        data_acked = min(acked, self.send_buffer.end)
        if data_acked > self.snd_una or (
            fin_point is not None and acked == fin_point and not self.fin_acked
        ):
            newly = data_acked - self.snd_una
            self.snd_una = max(self.snd_una, data_acked)
            self.snd_nxt = max(self.snd_nxt, self.snd_una)
            self.send_buffer.ack_to(self.snd_una)
            self.scoreboard.advance(self.snd_una)
            self._retries = 0
            self._dupacks = 0
            # RTT sample (Karn-valid ones only).
            if self._rtt_sample is not None and self.snd_una >= self._rtt_sample[0]:
                self.rto.on_measurement(self.sim.now - self._rtt_sample[1])
                self._rtt_sample = None
            self.rto.reset_backoff()
            if self.congestion.in_fast_recovery:
                if self.congestion.ack_covers_recovery(self.snd_una):
                    self.congestion.on_full_ack_in_recovery()
                else:
                    # NewReno partial ACK: retransmit the next hole.
                    self._retransmit_head()
            else:
                self.congestion.on_ack(newly, self.snd_nxt)
            if fin_point is not None and acked == fin_point:
                self.fin_acked = True
                self._fin_acked_transition()
            if self.snd_una >= self.snd_nxt and not (self.fin_sent and not self.fin_acked):
                self.rtx_timer.stop()
            else:
                self.rtx_timer.start(self.rto.rto)
            if self.on_send_space and self.send_buffer.free_space > 0:
                self.on_send_space()
        elif (
            data_acked == self.snd_una
            and self.snd_nxt > self.snd_una
            and not segment.data
            and not segment.flags & FLAG_FIN
        ):
            self._dupacks += 1
            if self._dupacks == self.options.dupack_threshold:
                if self.congestion.on_dupacks(self.snd_nxt - self.snd_una, self.snd_nxt):
                    self._retransmit_head()
            elif self._dupacks > self.options.dupack_threshold:
                self.congestion.on_extra_dupack()
                self._try_send()

    def _fin_acked_transition(self) -> None:
        if self.state == TcpState.FIN_WAIT_1:
            self.state = TcpState.FIN_WAIT_2
        elif self.state == TcpState.CLOSING:
            self._enter_time_wait()
        elif self.state == TcpState.LAST_ACK:
            self._teardown("closed")

    # -- payload / FIN ---------------------------------------------------------

    def _process_payload(self, segment: TCPSegment) -> None:
        if self.irs is None:
            return
        # _offset_for_seq inlined: seq_diff(seq, irs + 1) in C arithmetic.
        offset = ((segment.seq - self.irs - 1 + _SEQ_HALF) & _SEQ_MASK) - _SEQ_HALF
        data = segment.data
        dlen = len(data)
        end = offset + dlen
        reassembler = self.reassembler
        had_payload = dlen > 0
        is_old = had_payload and end <= reassembler.in_order_end
        if had_payload and (is_old or offset < reassembler.in_order_end):
            # Fully or partially old data: a retransmission from the
            # peer.  The ft failure detector counts these (paper §4.3).
            if self.on_retransmission_observed is not None:
                self.on_retransmission_observed(segment)
        if had_payload:
            self.bytes_received += dlen
            if (
                not self.options.stage_gated_data
                and self.deposit_limit is not None
                and end > reassembler.in_order_end
            ):
                ceiling = self.deposit_limit()
                if ceiling is not None and end > ceiling:
                    # Conservative-kernel emulation: data the deposit
                    # gate cannot admit yet is dropped outright; the
                    # client's retransmission will pick up where message
                    # delivery was interrupted (paper §4.3/§5).
                    return
            edge = self._window_right_edge()
            if offset >= reassembler.in_order_end and (
                offset >= edge or (not self.options.rfc_window_edge and end > edge)
            ):
                # Beyond the window edge.  RFC mode: a zero-window
                # probe / overrun — drop the payload but re-ACK so the
                # sender's persist machinery keeps working.
                # Conservative mode: a tail drop at the retreated edge —
                # silent, recovered by the client's RTO (paper §5).
                if self.options.rfc_window_edge:
                    self._send_ack_now()
                return
            before = reassembler.in_order_end
            reassembler.add(offset, data)
            advanced = reassembler.in_order_end > before
            out_of_order = not advanced
        else:
            out_of_order = False
        if segment.flags & FLAG_FIN:
            if self.peer_fin_offset is None:
                self.peer_fin_offset = end
        deposited = self._try_deposit()
        if had_payload:
            # Out-of-order or duplicate data wants an immediate dup-ACK
            # (fast retransmit depends on it).  In-order data that the
            # deposit gate is holding back must NOT be dup-ACKed — the
            # acknowledgement follows when the gate opens — so gated
            # arrivals fall back to the delayed-ACK timer as a safety
            # net only and do not count toward the 2-segment rule.
            self._schedule_ack(
                immediate=out_of_order or is_old, countable=deposited
            )
        elif segment.flags & FLAG_FIN and not deposited:
            # Retransmitted FIN (the original was already consumed and
            # ACKed from the state transition): re-ACK it.
            self._send_ack_now()

    def _deposit_ceiling(self) -> Optional[int]:
        if self.deposit_limit is None:
            return None
        return self.deposit_limit()

    def _try_deposit(self) -> bool:
        """Move staged bytes into the socket buffer as far as the
        deposit gate allows.  Returns True if anything was deposited or
        the FIN was consumed."""
        progressed = False
        reassembler = self.reassembler
        deposit_limit = self.deposit_limit
        ceiling = deposit_limit() if deposit_limit is not None else None
        target = reassembler.in_order_end
        if ceiling is not None and ceiling < target:
            target = ceiling
        n = target - reassembler.take_point
        if n > 0:
            start = reassembler.take_point
            data = reassembler.take(n)
            self.socket_buffer.deposit(data)
            progressed = True
            if self.on_deposit_data is not None:
                self.on_deposit_data(start, data)
            if self.on_deposit is not None:
                self.on_deposit(self.ack_point)
            if self.on_data is not None and self.socket_buffer.size:
                payload = self.socket_buffer.read()
                self.on_data(payload)
        # Peer FIN is consumable once all payload before it deposited
        # and the gate lets us past it.
        fin_offset = self.peer_fin_offset
        if (
            fin_offset is not None
            and not self.fin_deposited
            and reassembler.take_point >= fin_offset
            and reassembler.in_order_end >= fin_offset
            and (ceiling is None or ceiling > fin_offset)
        ):
            self.fin_deposited = True
            progressed = True
            self._fin_received_transition()
        return progressed

    def _fin_received_transition(self) -> None:
        if self.state == TcpState.ESTABLISHED:
            self.state = TcpState.CLOSE_WAIT
        elif self.state == TcpState.FIN_WAIT_1:
            # Our FIN not yet acked, theirs arrived: simultaneous close.
            self.state = TcpState.CLOSING
        elif self.state == TcpState.FIN_WAIT_2:
            self._enter_time_wait()
        self._send_ack_now()
        if self.on_remote_close:
            self.on_remote_close()

    def _enter_time_wait(self) -> None:
        self.state = TcpState.TIME_WAIT
        self.rtx_timer.stop()
        self.persist_timer.stop()
        self.ack_timer.stop()
        self.time_wait_timer.start(2 * self.options.msl)

    # ------------------------------------------------------------------
    # teardown
    # ------------------------------------------------------------------

    def _teardown(self, reason: str) -> None:
        if self.state == TcpState.CLOSED and self._closed_reported:
            return
        self.state = TcpState.CLOSED
        for timer in (self.rtx_timer, self.ack_timer, self.persist_timer, self.time_wait_timer):
            timer.stop()
        self.stack.connection_closed(self)
        if not self._closed_reported:
            self._closed_reported = True
            if self.on_closed:
                self.on_closed(reason)

    def __repr__(self) -> str:
        return (
            f"<TcpConnection {self.local_ip}:{self.local_port} -> "
            f"{self.remote_ip}:{self.remote_port} {self.state.value}>"
        )
