"""BSD-style per-host networking facade.

A :class:`Node` bundles the UDP and TCP stacks of a host behind one
object, so applications are written against a single, socket-flavoured
API (``connect``, ``listen``, ``udp_socket``) instead of wiring stacks
by hand.  HydraNet host servers extend this with ``v_host`` and
``setportopt`` (see :mod:`repro.hydranet` and :mod:`repro.core`).
"""

from __future__ import annotations

from typing import Optional

from repro.netsim.addressing import IPAddress
from repro.netsim.host import Host
from repro.tcp.options import TcpOptions
from repro.tcp.stack import Listener, TcpStack
from repro.tcp.tcb import TcpConnection
from repro.udp.udp import UdpSocket, UdpStack


class Node:
    """The networking personality of one host."""

    def __init__(self, host: Host, tcp_options: Optional[TcpOptions] = None):
        self.host = host
        self.sim = host.sim
        self.udp = UdpStack(host)
        self.tcp = TcpStack(host, tcp_options)

    @property
    def name(self) -> str:
        return self.host.name

    @property
    def ip(self) -> IPAddress:
        return self.host.ip

    # -- TCP ------------------------------------------------------------

    def connect(
        self,
        remote_ip,
        remote_port: int,
        options: Optional[TcpOptions] = None,
    ) -> TcpConnection:
        """Active-open a TCP connection."""
        return self.tcp.connect(remote_ip, remote_port, options=options)

    def listen(
        self,
        port: int,
        ip=None,
        options: Optional[TcpOptions] = None,
    ) -> Listener:
        """Passive-open a TCP port."""
        return self.tcp.listen(port, ip=ip, options=options)

    # -- UDP ------------------------------------------------------------

    def udp_socket(self) -> UdpSocket:
        return self.udp.socket()


def node_for(host: Host, tcp_options: Optional[TcpOptions] = None) -> Node:
    """Idempotently attach a :class:`Node` to a host."""
    existing = getattr(host, "_node", None)
    if existing is None:
        existing = Node(host, tcp_options)
        host._node = existing
    return existing
