"""BSD-style sockets facade over the simulated stacks."""

from .api import Node, node_for

__all__ = ["Node", "node_for"]
