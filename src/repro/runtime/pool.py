"""Process-pool scenario scheduler (DESIGN.md §12).

Every workload this repository cares about — the experiment suite, the
fault-schedule fuzzer, the perf harness — is a *batch of independent,
seed-deterministic simulations*.  :class:`ScenarioPool` fans such a
batch out to ``jobs`` worker processes:

* **longest-job-first dispatch** — tasks carry a ``cost`` hint and the
  scheduler hands the most expensive ones out first, so the batch's
  wall clock is bounded by ``max(longest task, total/jobs)`` instead of
  whatever the submission order happened to be;
* **per-task timeouts** — a worker that blows its deadline is killed
  and only *that* task is marked ``timeout``; the batch carries on in a
  replacement worker;
* **crash containment** — a task that takes its worker down (segfault,
  ``os._exit``, unpicklable result) is marked ``crashed``/``error`` and
  the batch carries on;
* **result caching** — tasks with a ``fingerprint`` are looked up in an
  optional :class:`~repro.runtime.cache.ResultCache` before dispatch
  and stored after success, so re-runs of unchanged scenarios are free;
* **chunked dispatch** — when a batch is much larger than the worker
  count, runs of small timeout-free tasks sharing one callable are
  handed out several per pipe round-trip (``fn`` pickled once per
  chunk), shrinking toward single-task dispatch as the queue drains so
  the tail still load-balances.

``jobs=1`` never spawns a process: the batch runs inline, in
scheduling order, with the same stdout capture and cache behaviour.
Combined with the deterministic reducer (:mod:`repro.runtime.merge`)
this makes ``--jobs N`` output byte-identical to a serial run.

Workers receive *data*, not state: a task is ``(fn, args, kwargs)``
where ``fn`` is a module-level callable and the arguments are plain
values (typically just an integer seed), so a forked and a freshly
spawned worker compute the identical result.  The start method comes
from ``REPRO_POOL_START_METHOD`` (default: ``fork`` where available).
"""

from __future__ import annotations

import io
import itertools
import os
import time
import traceback
from contextlib import redirect_stdout
from dataclasses import dataclass, field
from multiprocessing import get_context
from multiprocessing.connection import wait as _conn_wait
from typing import Any, Callable, Optional

__all__ = ["Task", "TaskOutcome", "PoolStats", "ScenarioPool", "default_start_method"]


def default_start_method() -> str:
    """``REPRO_POOL_START_METHOD`` env override, else ``fork`` on
    platforms that have it (cheap, inherits the warm import state),
    else ``spawn``."""
    import multiprocessing

    env = os.environ.get("REPRO_POOL_START_METHOD")
    if env:
        return env
    return "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"


@dataclass
class Task:
    """One schedulable unit: a picklable module-level callable plus
    plain-data arguments.

    ``key`` must be unique within a batch — it is the canonical
    identity the deterministic merge reorders by.  ``cost`` is a
    relative wall-clock hint for longest-job-first dispatch (any
    monotone proxy works; bytes transferred, simulated seconds…).
    ``fingerprint`` opts the task into the result cache; leave ``None``
    for uncacheable work (e.g. shrink candidates)."""

    key: str
    fn: Callable[..., Any]
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    cost: float = 1.0
    timeout: Optional[float] = None
    fingerprint: Optional[str] = None


@dataclass
class TaskOutcome:
    """What became of one task."""

    key: str
    status: str  # "ok" | "error" | "timeout" | "crashed"
    value: Any = None
    error: Optional[str] = None
    stdout: str = ""
    wall_seconds: float = 0.0
    worker: int = -1
    cached: bool = False

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass
class PoolStats:
    """Aggregate figures for the life of one :class:`ScenarioPool`."""

    jobs: int
    tasks: int = 0
    cache_hits: int = 0
    errors: int = 0
    timeouts: int = 0
    crashes: int = 0
    respawns: int = 0
    wall_seconds: float = 0.0
    task_seconds: float = 0.0


def _execute(fn, args, kwargs):
    """Run one task, capturing stdout; never raises."""
    buf = io.StringIO()
    started = time.perf_counter()
    try:
        with redirect_stdout(buf):
            value = fn(*args, **kwargs)
        return "ok", value, None, buf.getvalue(), time.perf_counter() - started
    except Exception:
        return (
            "error",
            None,
            traceback.format_exc(),
            buf.getvalue(),
            time.perf_counter() - started,
        )


def _worker_main(conn, worker_index: int, pin_core: Optional[int]) -> None:
    """Worker loop: receive ``(fn, [(key, args, kwargs), ...])`` — one
    callable, a chunk of argument sets — and stream one outcome tuple
    back per task.  Chunking amortizes the pipe round-trip and pickles
    ``fn`` once per chunk instead of once per task.  ``None`` is the
    shutdown sentinel."""
    if pin_core is not None:
        try:
            os.sched_setaffinity(0, {pin_core})
        except (AttributeError, OSError):
            pass  # non-Linux or restricted affinity: run unpinned
    try:
        while True:
            msg = conn.recv()
            if msg is None:
                break
            fn, items = msg
            for key, args, kwargs in items:
                status, value, error, out, wall = _execute(fn, args, kwargs)
                try:
                    conn.send((key, status, value, error, out, wall))
                except Exception as exc:
                    # Connection.send pickles before writing, so a failed
                    # pickle leaves the pipe clean and we can still report.
                    conn.send(
                        (key, "error", None, f"result not picklable: {exc!r}", out, wall)
                    )
    except (EOFError, BrokenPipeError, KeyboardInterrupt):
        pass
    finally:
        conn.close()


class _Worker:
    """Parent-side handle: process + duplex pipe + current assignment
    (a chunk of one or more tasks, consumed front to back as results
    stream in)."""

    __slots__ = ("process", "conn", "index", "tasks", "started_at")

    def __init__(self, ctx, index: int, pin_core: Optional[int]):
        self.conn, child_conn = ctx.Pipe(duplex=True)
        self.process = ctx.Process(
            target=_worker_main,
            args=(child_conn, index, pin_core),
            daemon=True,
            name=f"repro-pool-{index}",
        )
        self.process.start()
        child_conn.close()
        self.index = index
        self.tasks: list[Task] = []
        self.started_at = 0.0

    def assign(self, chunk: list[Task]) -> None:
        self.tasks = list(chunk)
        self.started_at = time.perf_counter()
        self.conn.send(
            (
                chunk[0].fn,
                [(t.key, tuple(t.args), dict(t.kwargs)) for t in chunk],
            )
        )

    def deadline(self) -> Optional[float]:
        # Only single-task assignments carry timeouts (the chunker
        # never groups tasks that have one), so the head task's
        # deadline is the worker's deadline.
        if not self.tasks or self.tasks[0].timeout is None:
            return None
        return self.started_at + self.tasks[0].timeout

    def kill(self) -> None:
        try:
            self.conn.close()
        except OSError:
            pass
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=2.0)
            if self.process.is_alive():
                self.process.kill()
                self.process.join(timeout=2.0)


class ScenarioPool:
    """Run batches of independent tasks over ``jobs`` persistent worker
    processes (see the module docstring for the scheduling contract).

    Use as a context manager, or call :meth:`close` when done.  With
    ``pin_cores=True`` worker *i* is pinned to core ``i % cpu_count``
    (best effort) — the benchmark harness uses this so interleaved runs
    do not migrate between cores mid-measurement.
    """

    def __init__(
        self,
        jobs: int = 1,
        *,
        cache=None,
        default_timeout: Optional[float] = None,
        pin_cores: bool = False,
        start_method: Optional[str] = None,
    ):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache = cache
        self.default_timeout = default_timeout
        self.pin_cores = pin_cores
        self._ctx = get_context(start_method or default_start_method())
        self._workers: list[_Worker] = []
        self._next_index = itertools.count()
        self._closed = False
        self.stats = PoolStats(jobs=jobs)

    # -- worker lifecycle --------------------------------------------------

    def _spawn_worker(self) -> _Worker:
        index = next(self._next_index)
        pin = index % (os.cpu_count() or 1) if self.pin_cores else None
        worker = _Worker(self._ctx, index, pin)
        self._workers.append(worker)
        return worker

    def _discard_worker(self, worker: _Worker) -> None:
        worker.kill()
        if worker in self._workers:
            self._workers.remove(worker)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            try:
                worker.conn.send(None)
            except (OSError, BrokenPipeError):
                pass
        for worker in self._workers:
            worker.process.join(timeout=2.0)
            worker.kill()
        self._workers.clear()

    def __enter__(self) -> "ScenarioPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- scheduling --------------------------------------------------------

    def run(
        self,
        tasks: list[Task],
        on_result: Optional[Callable[[TaskOutcome], None]] = None,
    ) -> dict[str, TaskOutcome]:
        """Run a batch; returns ``{task.key: TaskOutcome}``.

        ``on_result`` fires once per task *in completion order* (cache
        hits first) — wrap it in a
        :class:`~repro.runtime.merge.DeterministicMerger` to stream
        output in canonical order instead.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        keys = [t.key for t in tasks]
        if len(set(keys)) != len(keys):
            dupes = sorted({k for k in keys if keys.count(k) > 1})
            raise ValueError(f"duplicate task keys in batch: {dupes}")

        batch_start = time.perf_counter()
        outcomes: dict[str, TaskOutcome] = {}

        def record(outcome: TaskOutcome) -> None:
            outcomes[outcome.key] = outcome
            self.stats.tasks += 1
            self.stats.task_seconds += outcome.wall_seconds
            if outcome.cached:
                self.stats.cache_hits += 1
            elif outcome.status == "error":
                self.stats.errors += 1
            elif outcome.status == "timeout":
                self.stats.timeouts += 1
            elif outcome.status == "crashed":
                self.stats.crashes += 1
            if on_result is not None:
                on_result(outcome)

        pending: list[Task] = []
        for task in tasks:
            if task.timeout is None and self.default_timeout is not None:
                task.timeout = self.default_timeout
            hit = self.cache.get(task) if self.cache is not None else None
            if hit is not None:
                record(hit)
            else:
                pending.append(task)

        # Longest job first; ties broken by submission order so the
        # schedule itself is deterministic.
        order = sorted(range(len(pending)), key=lambda i: (-pending[i].cost, i))
        queue = [pending[i] for i in order]

        if self.jobs == 1:
            for task in queue:
                status, value, error, out, wall = _execute(
                    task.fn, task.args, task.kwargs
                )
                outcome = TaskOutcome(
                    key=task.key,
                    status=status,
                    value=value,
                    error=error,
                    stdout=out,
                    wall_seconds=wall,
                    worker=0,
                )
                if outcome.ok and self.cache is not None and task.fingerprint:
                    self.cache.put(task, outcome)
                record(outcome)
            self.stats.wall_seconds += time.perf_counter() - batch_start
            return outcomes

        self._run_pooled(queue, record)
        self.stats.wall_seconds += time.perf_counter() - batch_start
        return outcomes

    def run_one(self, task: Task) -> TaskOutcome:
        """Run a single task through the pool (one worker busy, the
        rest idle).  The fuzzer's shrink loop uses this: candidate
        replays are inherently sequential but still get the pool's
        isolation, timeout, and crash containment."""
        return self.run([task])[task.key]

    def _chunk_limit(self, remaining: int) -> int:
        """How many tasks to hand out per pipe round-trip.

        When the batch is much larger than the worker count, per-task
        round-trips dominate small tasks (BENCH_PR5 measured jobs>1 at
        0.84–0.91x of serial for 50 tiny scenarios).  Chunks amortize
        that, but shrink toward 1 as the queue drains so the tail still
        load-balances longest-job-first.
        """
        return max(1, min(8, remaining // (self.jobs * 4)))

    def _take_chunk(self, queue: list[Task]) -> list[Task]:
        """Pop the next dispatch chunk: the head task plus, when safe,
        up to the chunk limit of its immediate successors.  Only tasks
        sharing the head's callable (so ``fn`` pickles once) and
        carrying no timeout (so the deadline sweep stays exact) are
        grouped; anything else dispatches alone, exactly as before."""
        chunk = [queue.pop(0)]
        head = chunk[0]
        if head.timeout is not None:
            return chunk
        limit = self._chunk_limit(len(queue) + 1)
        while (
            len(chunk) < limit
            and queue
            and queue[0].fn is head.fn
            and queue[0].timeout is None
        ):
            chunk.append(queue.pop(0))
        return chunk

    def _run_pooled(self, queue: list[Task], record) -> None:
        queue = list(queue)  # consumed front to back
        busy: list[_Worker] = []

        def dispatch() -> None:
            while queue and (len(busy) < self.jobs):
                idle = [w for w in self._workers if not w.tasks]
                worker = idle[0] if idle else self._spawn_worker()
                chunk = self._take_chunk(queue)
                try:
                    worker.assign(chunk)
                except (OSError, BrokenPipeError):
                    # Worker already dead (e.g. killed by a previous
                    # batch's fallout): replace it and retry the tasks.
                    self._discard_worker(worker)
                    queue[:0] = chunk
                    continue
                busy.append(worker)

        dispatch()
        while busy:
            now = time.perf_counter()
            timeout = None
            for worker in busy:
                deadline = worker.deadline()
                if deadline is not None:
                    remaining = max(deadline - now, 0.0)
                    timeout = remaining if timeout is None else min(timeout, remaining)
            ready = _conn_wait([w.conn for w in busy], timeout=timeout)

            for worker in list(busy):
                if worker.conn not in ready:
                    continue
                # Drain every buffered result: a chunked worker streams
                # one message per task, and several may already be in
                # the pipe by the time wait() wakes us.
                while worker.tasks:
                    task = worker.tasks[0]
                    try:
                        key, status, value, error, out, wall = worker.conn.recv()
                    except (EOFError, OSError):
                        # The worker died mid-task: contain the blast
                        # radius to the task that was running, requeue
                        # the rest of its chunk (they never started),
                        # and replace the worker.  The pipe EOF can
                        # beat process reaping, so give the child a
                        # moment to be waited on before reading its
                        # exit code.
                        worker.process.join(timeout=1.0)
                        exitcode = worker.process.exitcode
                        unstarted = worker.tasks[1:]
                        busy.remove(worker)
                        self._discard_worker(worker)
                        self.stats.respawns += 1
                        queue[:0] = unstarted
                        record(
                            TaskOutcome(
                                key=task.key,
                                status="crashed",
                                error=f"worker died (exit code {exitcode})",
                                wall_seconds=time.perf_counter() - worker.started_at,
                                worker=worker.index,
                            )
                        )
                        dispatch()
                        break
                    worker.tasks.pop(0)
                    outcome = TaskOutcome(
                        key=key,
                        status=status,
                        value=value,
                        error=error,
                        stdout=out,
                        wall_seconds=wall,
                        worker=worker.index,
                    )
                    if outcome.ok and self.cache is not None and task.fingerprint:
                        self.cache.put(task, outcome)
                    record(outcome)
                    if not worker.tasks:
                        busy.remove(worker)
                        dispatch()
                        break
                    if not worker.conn.poll():
                        break

            # Deadline sweep: kill overdue workers, fail only their task
            # (timeouts never chunk, so exactly one task is affected).
            now = time.perf_counter()
            for worker in list(busy):
                deadline = worker.deadline()
                if deadline is None or now < deadline:
                    continue
                task = worker.tasks[0]
                busy.remove(worker)
                self._discard_worker(worker)
                self.stats.respawns += 1
                record(
                    TaskOutcome(
                        key=task.key,
                        status="timeout",
                        error=f"task exceeded {task.timeout:.1f}s timeout",
                        wall_seconds=now - worker.started_at,
                        worker=worker.index,
                    )
                )
                dispatch()
