"""Parallel scenario-execution layer (DESIGN.md §12).

Three pieces, used together by the experiment runner, the fuzzer, and
the perf harness:

* :mod:`repro.runtime.pool` — a process-pool scheduler for batches of
  independent seed-deterministic simulations (longest-job-first
  dispatch, per-task timeouts, crash containment, ``jobs=1`` inline
  fast path);
* :mod:`repro.runtime.merge` — deterministic reduction: results are
  reassembled in canonical key order so parallel output is
  byte-identical to a serial run;
* :mod:`repro.runtime.cache` — an on-disk result cache keyed by
  ``(source fingerprint, scenario fingerprint)`` so re-runs of
  unchanged scenarios are free.
"""

from .cache import ResultCache, default_cache_dir, source_fingerprint, task_fingerprint
from .merge import (
    DeterministicMerger,
    batch_fingerprint,
    concat_stdout,
    ordered_outcomes,
)
from .pool import PoolStats, ScenarioPool, Task, TaskOutcome, default_start_method

__all__ = [
    "DeterministicMerger",
    "PoolStats",
    "ResultCache",
    "ScenarioPool",
    "Task",
    "TaskOutcome",
    "batch_fingerprint",
    "concat_stdout",
    "default_cache_dir",
    "default_start_method",
    "ordered_outcomes",
    "source_fingerprint",
    "task_fingerprint",
]
