"""On-disk result cache for seed-deterministic scenarios (DESIGN.md §12).

Cache key = ``(source fingerprint, scenario fingerprint)``:

* the **source fingerprint** hashes every ``*.py`` file under the
  ``repro`` package plus the environment knobs that change simulation
  behaviour (``REPRO_SEED_OFFSET``) — touch any source file and every
  cached result is invalidated at once;
* the **scenario fingerprint** hashes the task's callable identity and
  its plain-data arguments (:func:`task_fingerprint`), so two tasks
  with the same inputs share an entry no matter which front end
  submitted them.

Entries live under ``<root>/<source_fp[:16]>/<scenario_fp>.pkl`` and
store the task's value *and* its captured stdout, so a cache hit
replays byte-identical output.  Corrupt or unreadable entries are
treated as misses.  The cache directory defaults to ``.repro-cache``
under the current working directory (override with ``REPRO_CACHE_DIR``
or ``--cache-dir``).
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import shutil
import tempfile
from pathlib import Path
from typing import Optional

from .pool import Task, TaskOutcome

__all__ = [
    "ResultCache",
    "source_fingerprint",
    "task_fingerprint",
    "default_cache_dir",
]

_ENTRY_VERSION = 1

#: Environment variables that alter simulation behaviour and therefore
#: participate in the source fingerprint.
FINGERPRINT_ENV = ("REPRO_SEED_OFFSET",)

_source_fp_cache: dict[tuple, str] = {}


def default_cache_dir() -> Path:
    return Path(os.environ.get("REPRO_CACHE_DIR", ".repro-cache"))


def source_fingerprint(extra_env: tuple = FINGERPRINT_ENV) -> str:
    """Digest of the installed ``repro`` sources + behavioural env.

    Memoized per process: the tree is hashed once (~170 files) and any
    source edit between processes produces a different digest, which is
    exactly the "source change ⇒ cache miss" contract.
    """
    env_part = tuple((name, os.environ.get(name, "")) for name in extra_env)
    cached = _source_fp_cache.get(env_part)
    if cached is not None:
        return cached
    import repro

    root = Path(repro.__file__).resolve().parent
    h = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        h.update(str(path.relative_to(root)).encode())
        h.update(b"\x00")
        h.update(hashlib.sha256(path.read_bytes()).digest())
    for name, value in env_part:
        h.update(f"{name}={value}".encode())
        h.update(b"\x00")
    digest = h.hexdigest()
    _source_fp_cache[env_part] = digest
    return digest


def task_fingerprint(task: Task, salt: str = "") -> str:
    """Scenario fingerprint for a :class:`Task`: callable identity +
    JSON of its arguments (which are plain data by the pool's
    contract).  ``salt`` lets a front end segregate otherwise-identical
    calls (e.g. a mutation name)."""
    payload = json.dumps(
        {
            "fn": f"{task.fn.__module__}.{task.fn.__qualname__}",
            "args": list(task.args),
            "kwargs": task.kwargs,
            "salt": salt,
        },
        sort_keys=True,
        default=repr,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


class ResultCache:
    """Pickle-per-entry cache under ``root``, namespaced by the source
    fingerprint.  Passed to :class:`~repro.runtime.pool.ScenarioPool`,
    which consults it before dispatch and fills it on success."""

    #: In-memory memo bound (entries; ~small dicts, so this is MBs at
    #: most).  Repeated hits on one fingerprint within a process — the
    #: warm-cache experiment re-runs, shrink loops — skip the unpickle
    #: entirely after the first load.
    MEMO_LIMIT = 4096

    def __init__(self, root: Optional[Path] = None, source_fp: Optional[str] = None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.source_fp = source_fp if source_fp is not None else source_fingerprint()
        self.hits = 0
        self.misses = 0
        self._memo: dict[str, dict] = {}

    def _path(self, scenario_fp: str) -> Path:
        return self.root / self.source_fp[:16] / f"{scenario_fp}.pkl"

    def get(self, task: Task) -> Optional[TaskOutcome]:
        """Cached outcome for ``task`` (marked ``cached=True``), or
        ``None`` on a miss.  Tasks without a fingerprint never hit."""
        if not task.fingerprint:
            return None
        entry = self._memo.get(task.fingerprint)
        if entry is None:
            path = self._path(task.fingerprint)
            try:
                with open(path, "rb") as f:
                    entry = pickle.load(f)
                if entry.get("version") != _ENTRY_VERSION:
                    raise ValueError(
                        f"unknown cache entry version {entry.get('version')}"
                    )
                entry["value"], entry["stdout"], entry["wall_seconds"]
            except (OSError, pickle.UnpicklingError, EOFError, KeyError, ValueError,
                    AttributeError, ImportError, IndexError):
                self.misses += 1
                return None
            if len(self._memo) < self.MEMO_LIMIT:
                self._memo[task.fingerprint] = entry
        self.hits += 1
        return TaskOutcome(
            key=task.key,
            status="ok",
            value=entry["value"],
            stdout=entry["stdout"],
            wall_seconds=entry["wall_seconds"],
            cached=True,
        )

    def put(self, task: Task, outcome: TaskOutcome) -> None:
        """Store a successful outcome (atomically: tmp file + rename,
        so a parallel writer can never leave a torn entry)."""
        if not task.fingerprint or not outcome.ok:
            return
        path = self._path(task.fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "version": _ENTRY_VERSION,
            "value": outcome.value,
            "stdout": outcome.stdout,
            "wall_seconds": outcome.wall_seconds,
        }
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as f:
                pickle.dump(entry, f)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def prune_stale_sources(self) -> int:
        """Drop entry directories from other source fingerprints;
        returns how many were removed.  (Every edit abandons a
        namespace — re-runs would otherwise accrete them forever.)"""
        removed = 0
        if not self.root.is_dir():
            return 0
        keep = self.source_fp[:16]
        for child in self.root.iterdir():
            if child.is_dir() and child.name != keep:
                shutil.rmtree(child, ignore_errors=True)
                removed += 1
        return removed
