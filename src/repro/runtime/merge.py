"""Deterministic reduction of pooled results (DESIGN.md §12).

The pool completes tasks in whatever order the operating system
schedules them; everything user-visible must not care.  The contract:
every batch has a *canonical key order* (experiment declaration order,
ascending scenario seed, …), workers return plain data, and the merge
layer reassembles that data — report text, fuzz fingerprints, batch
digests — strictly in canonical order.  A parallel run is therefore
byte-identical to a serial run of the same batch.
"""

from __future__ import annotations

import hashlib
import json
from typing import Callable, Iterable, Mapping, Optional, Sequence

from .pool import TaskOutcome

__all__ = [
    "DeterministicMerger",
    "ordered_outcomes",
    "concat_stdout",
    "batch_fingerprint",
]


class DeterministicMerger:
    """Re-order a stream of out-of-order outcomes into canonical order.

    ``offer`` buffers each arriving outcome and emits the longest
    possible prefix of the canonical order to ``emit`` — so a front end
    can stream per-task output lines live while still printing them in
    the exact order a serial run would.
    """

    def __init__(self, keys: Sequence[str], emit: Callable[[TaskOutcome], None]):
        if len(set(keys)) != len(keys):
            raise ValueError("canonical key order contains duplicates")
        self._order = list(keys)
        self._expected = set(keys)
        self._emit = emit
        self._buffer: dict[str, TaskOutcome] = {}
        self._next = 0

    def offer(self, outcome: TaskOutcome) -> None:
        if outcome.key not in self._expected:
            raise KeyError(f"unexpected task key {outcome.key!r}")
        if outcome.key in self._buffer:
            raise ValueError(f"duplicate outcome for key {outcome.key!r}")
        self._buffer[outcome.key] = outcome
        while self._next < len(self._order):
            key = self._order[self._next]
            if key not in self._buffer:
                break
            self._next += 1
            self._emit(self._buffer[key])

    @property
    def done(self) -> bool:
        return self._next == len(self._order)

    def missing(self) -> list[str]:
        """Keys not yet offered, in canonical order."""
        return [k for k in self._order if k not in self._buffer]


def ordered_outcomes(
    outcomes: Mapping[str, TaskOutcome], keys: Iterable[str]
) -> list[TaskOutcome]:
    """The batch's outcomes in canonical order; raises ``KeyError``
    naming every missing key (a missing outcome means the pool lost a
    task, which is a harness bug worth failing loudly on)."""
    keys = list(keys)
    missing = [k for k in keys if k not in outcomes]
    if missing:
        raise KeyError(f"batch is missing outcomes for: {missing}")
    return [outcomes[k] for k in keys]


def concat_stdout(outcomes: Mapping[str, TaskOutcome], keys: Iterable[str]) -> str:
    """Captured worker stdout, concatenated in canonical order."""
    return "".join(o.stdout for o in ordered_outcomes(outcomes, keys))


def _default_value_repr(value) -> str:
    try:
        return json.dumps(value, sort_keys=True)
    except TypeError:
        return repr(value)


def batch_fingerprint(
    outcomes: Mapping[str, TaskOutcome],
    keys: Iterable[str],
    value_repr: Optional[Callable] = None,
) -> str:
    """A canonical-order digest of ``(key, status, value)`` for a whole
    batch.  Two runs of the same batch — serial or parallel, any jobs
    level — must produce the same fingerprint; the scaling benchmark
    and CI's scaling-smoke step gate on exactly that."""
    repr_fn = value_repr or _default_value_repr
    h = hashlib.sha256()
    for outcome in ordered_outcomes(outcomes, keys):
        h.update(outcome.key.encode())
        h.update(b"\x00")
        h.update(outcome.status.encode())
        h.update(b"\x00")
        h.update(repr_fn(outcome.value).encode())
        h.update(b"\x01")
    return h.hexdigest()
