"""``python -m repro`` — overview and experiment launcher.

Usage::

    python -m repro                 # show the overview
    python -m repro experiments     # run the full evaluation
    python -m repro experiments --fast
"""

import sys


def main() -> int:
    args = sys.argv[1:]
    if args and args[0] == "experiments":
        from repro.experiments.runner import main as run_experiments

        return run_experiments(args[1:])
    if args and args[0] == "fuzz":
        from repro.invariants.fuzz import main as run_fuzz

        return run_fuzz(args[1:])
    if args and args[0] == "perf":
        from repro.metrics.perf import main as run_perf

        return run_perf(args[1:])
    if args and args[0] == "mesh":
        from repro.experiments.mesh_scaling import main as run_mesh

        return run_mesh(args[1:])
    import repro

    print(repro.__doc__)
    print("commands:")
    print("  python -m repro experiments [--fast]   run the full evaluation")
    print("  python -m repro experiments --jobs N   ... on N worker processes")
    print("  python -m repro fuzz --runs N --seed S fuzz fault schedules w/ monitors")
    print("  python -m repro fuzz --replay FILE     replay a saved reproducer")
    print("  python -m repro fuzz --backend all     fuzz every replication backend")
    print("  python -m repro perf [--check]         engine benchmark vs best committed baseline")
    print("  python -m repro perf --compare-schedulers  wheel-vs-heap fingerprints + parity")
    print("  python -m repro perf --profile [DIR]   event histogram + cProfile breakdown")
    print("  python -m repro perf --scaling         scenario-throughput scaling sweep")
    print("  python -m repro mesh [--fast|--certify] datacenter-mesh scaling sweep (D5)")
    print("  python -m repro.experiments.figure4    just the paper's Figure 4")
    print("  python -m repro.experiments.recovery   D3 autonomous recovery demo")
    print("  pytest tests/                          the test suite")
    print("  pytest benchmarks/ --benchmark-only    benchmark harness")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
