"""A2/D1: fail-over latency vs detector threshold + client transparency."""

import pytest

from repro.experiments.failover import (
    run_congestion_false_positive,
    run_crash_failover,
)

from .conftest import bench_once

THRESHOLDS = (2, 4, 8)


def test_bench_failover_threshold_sweep(benchmark):
    def sweep():
        return [run_crash_failover(t) for t in THRESHOLDS]

    outcomes = bench_once(benchmark, sweep)
    benchmark.extra_info["thresholds"] = list(THRESHOLDS)
    benchmark.extra_info["failover_latency_s"] = [
        round(o.failover_latency, 2) for o in outcomes
    ]
    benchmark.extra_info["client_stall_s"] = [
        round(o.client_stall, 2) for o in outcomes
    ]
    for outcome in outcomes:
        assert outcome.detected
        assert outcome.transfer_complete
        assert outcome.client_events == []  # full transparency
    latencies = [o.failover_latency for o in outcomes]
    # Detection latency grows with the threshold (the paper's trade-off).
    assert latencies == sorted(latencies)


def test_bench_congestion_reports(benchmark):
    def sweep():
        return [run_congestion_false_positive(t) for t in THRESHOLDS]

    outcomes = bench_once(benchmark, sweep)
    benchmark.extra_info["thresholds"] = list(THRESHOLDS)
    benchmark.extra_info["failure_reports"] = [o.failure_reports for o in outcomes]
    benchmark.extra_info["spurious_shutdowns"] = [
        o.spurious_shutdowns for o in outcomes
    ]
    # The paper's trade-off: a hair-trigger threshold reconfigures during
    # a mere congestion burst (its probe pings are lost too), shutting
    # down a live replica; higher thresholds ride the burst out.
    shutdowns = [o.spurious_shutdowns for o in outcomes]
    assert shutdowns == sorted(shutdowns, reverse=True)
    assert outcomes[-1].spurious_shutdowns == 0
