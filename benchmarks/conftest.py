"""Benchmark-suite configuration.

Every benchmark regenerates one of the paper's reported series (or an
ablation from DESIGN.md) inside the timed section, asserts its shape,
and attaches the numbers as ``extra_info`` so the rows appear in the
pytest-benchmark report.
"""

import pytest


def bench_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under the benchmark timer.

    Simulations are deterministic, so repeated rounds only re-measure
    wall-clock noise of the host machine; one round per benchmark keeps
    the suite fast while still producing the table rows.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
