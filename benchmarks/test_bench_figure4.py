"""Figure 4: ttcp throughput vs packet size, four configurations.

Each benchmark regenerates one configuration's full row (all seven
paper packet sizes); the combined test asserts the cross-configuration
ordering the published figure shows.
"""

import pytest

from repro.experiments.figure4 import CONFIG_ORDER, check_shape, run_figure4
from repro.workloads import FIGURE4_PACKET_SIZES

from .conftest import bench_once

NBUF = 512  # reduced from the full 2048 to keep the suite quick


@pytest.mark.parametrize("config", CONFIG_ORDER)
def test_bench_figure4_series(benchmark, config):
    result = bench_once(
        benchmark,
        run_figure4,
        sizes=FIGURE4_PACKET_SIZES,
        nbuf=NBUF,
        configs=[config],
    )
    series = result[config]
    benchmark.extra_info["packet_sizes"] = list(FIGURE4_PACKET_SIZES)
    benchmark.extra_info["throughput_kB_per_s"] = [round(v, 1) for v in series]
    # Rising curve, as in the paper.
    assert all(b >= a * 0.95 for a, b in zip(series, series[1:]))


def test_bench_figure4_ordering(benchmark):
    """The headline comparison: all four configurations at the largest
    and smallest packet sizes, with the paper's ordering."""
    results = bench_once(benchmark, run_figure4, sizes=(16, 1024), nbuf=NBUF)
    for config, series in results.items():
        benchmark.extra_info[config] = [round(v, 1) for v in series]
    assert check_shape(results) == []
    # The FT configuration pays a clear penalty at small packet sizes...
    assert results["primary_backup"][0] < results["clean"][0] * 0.85
    # ...but remains "not unreasonably lower" at large ones (paper §5).
    assert results["primary_backup"][1] > results["clean"][1] * 0.5
