"""A6: UDP vs reliable-ordered acknowledgement channel."""

import pytest

from repro.experiments.ordered_channel import check_shape, run_sweep

from .conftest import bench_once


def test_bench_ordered_channel(benchmark):
    outcomes = bench_once(benchmark, run_sweep, loss_rates=(0.0, 0.2), n_requests=100)
    for o in outcomes:
        benchmark.extra_info[f"{o.channel}@{o.loss_rate:.0%}"] = {
            "p95_ms": round(o.echo_p95_ms, 1),
            "chan_msgs": o.channel_messages,
        }
    assert check_shape(outcomes) == []
    by_key = {(o.channel, o.loss_rate): o for o in outcomes}
    # Ordering costs ~2x channel messages even with zero loss...
    assert (
        by_key[("ordered", 0.0)].channel_messages
        > by_key[("udp (paper)", 0.0)].channel_messages * 1.5
    )
    # ...and repairs loss without waiting for client timeouts.
    assert (
        by_key[("ordered", 0.2)].echo_p95_ms
        < by_key[("udp (paper)", 0.2)].echo_p95_ms
    )
