"""A1: throughput vs acknowledgement-chain length."""

import pytest

from repro.experiments.backups_sweep import check_shape, run_backups_sweep

from .conftest import bench_once

COUNTS = (0, 1, 2, 4)


def test_bench_backups_sweep(benchmark):
    results = bench_once(
        benchmark,
        run_backups_sweep,
        backup_counts=COUNTS,
        sizes=(256, 1024),
        nbuf=256,
    )
    for key, series in results.items():
        benchmark.extra_info[key] = [round(v, 1) for v in series]
    assert check_shape(results, COUNTS) == []
    # Every chain length still moves data.
    for n in COUNTS:
        assert all(v > 0 for v in results[f"backups={n}"])


def test_bench_long_chain_completes(benchmark):
    """Even a 4-backup chain sustains the transfer (the deposit gates
    compose transitively down the chain)."""
    results = bench_once(
        benchmark,
        run_backups_sweep,
        backup_counts=(4,),
        sizes=(1024,),
        nbuf=256,
    )
    benchmark.extra_info["backups=4"] = [round(v, 1) for v in results["backups=4"]]
    assert results["backups=4"][0] > 50.0
