"""A5: receive-path variants under deposit gating (the design choice
behind the paper's §5 timeout commentary)."""

import pytest

from repro.experiments.receive_path import VARIANTS, check_shape, run_all

from .conftest import bench_once


def test_bench_receive_path_variants(benchmark):
    outcomes = bench_once(benchmark, run_all, nbuf=64)
    benchmark.extra_info["variants"] = [o.variant for o in outcomes]
    benchmark.extra_info["throughput_kB_per_s"] = [
        round(o.throughput_kB_per_sec, 1) for o in outcomes
    ]
    benchmark.extra_info["client_RTOs"] = [o.client_timeouts for o in outcomes]
    assert check_shape(outcomes) == []
    by_name = {o.variant: o for o in outcomes}
    # Staging (the paper's projected fix) eliminates client timeouts;
    # the literal no-staging reading suffers one RTO per window.
    assert by_name["staged"].client_timeouts == 0
    assert by_name["no-staging"].client_timeouts > 10
