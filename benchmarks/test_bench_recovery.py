"""D3: autonomous recovery — MTTR, catch-up time, and transfer volume."""

from repro.experiments.recovery import TARGET_DEGREE, run_recovery_cycles

from .conftest import bench_once


def test_bench_recovery_cycles(benchmark):
    result = bench_once(benchmark, run_recovery_cycles, cycles=1)
    benchmark.extra_info["mttr_s"] = [round(i.mttr, 2) for i in result.incidents]
    benchmark.extra_info["catchup_s"] = [
        round(i.catchup_duration, 3) for i in result.incidents
    ]
    benchmark.extra_info["transfer_bytes"] = [
        i.transfer_bytes for i in result.incidents
    ]
    benchmark.extra_info["availability"] = round(result.availability, 4)
    assert result.joins_completed == 2 * result.cycles
    assert result.joins_aborted == 0
    assert result.stream_intact
    assert result.client_events == []  # full transparency
    assert result.final_degree == TARGET_DEGREE
    for incident in result.incidents:
        assert 0 < incident.mttr < 30.0
        assert incident.transfer_bytes > 0
