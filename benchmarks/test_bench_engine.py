"""Engine perf-smoke: the macro-benchmark behind ``BENCH_HISTORY.json``.

Re-runs the bulk ft-TCP transfer through the primary + 2-backup chain
and compares against the committed trajectory: deterministic simulation
results (event count, simulated duration, throughput, queue high-water
mark) must match the latest history entry exactly on any machine;
events/sec gates on a relative threshold against the *best* committed
entry because wall-clock speed varies by host
(``PERF_REGRESSION_PCT`` overrides the default 30).
"""

import os
from pathlib import Path

from repro.metrics.perf import (
    DEFAULT_THRESHOLD,
    check_regression,
    load_baseline,
    run_engine_benchmark,
)

from .conftest import bench_once

BASELINE_PATH = Path(__file__).resolve().parents[1] / "BENCH_HISTORY.json"


def _threshold() -> float:
    pct = os.environ.get("PERF_REGRESSION_PCT")
    return float(pct) / 100.0 if pct else DEFAULT_THRESHOLD


def test_bench_engine_macro(benchmark):
    baseline = load_baseline(BASELINE_PATH)
    workload = baseline.get("workload") or baseline["engine"]["workload"]
    result = bench_once(benchmark, run_engine_benchmark, **workload)
    benchmark.extra_info.update(result.to_dict())
    assert result.completed
    problems = check_regression(result, baseline, threshold=_threshold())
    assert problems == [], "\n".join(problems)


def test_bench_engine_deterministic_results():
    """Two runs with the same seed produce byte-identical simulation
    results (the perf work must never perturb behaviour)."""
    a = run_engine_benchmark(nbuf=64, buflen=1024)
    b = run_engine_benchmark(nbuf=64, buflen=1024)
    for field in (
        "completed",
        "bytes_sent",
        "events",
        "sim_seconds",
        "peak_queue_len",
        "throughput_kB_per_s",
    ):
        assert getattr(a, field) == getattr(b, field), field
