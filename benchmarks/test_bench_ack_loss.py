"""A3: the unreliable acknowledgement channel under loss."""

import pytest

from repro.experiments.ack_channel_loss import check_shape, run_sweep

from .conftest import bench_once

RATES = (0.0, 0.1, 0.2)


def test_bench_ack_channel_loss(benchmark):
    outcomes = bench_once(
        benchmark, run_sweep, loss_rates=RATES, nbuf=128, n_requests=100
    )
    benchmark.extra_info["loss_rates"] = list(RATES)
    benchmark.extra_info["bulk_kB_per_s"] = [
        round(o.bulk_throughput_kB_per_sec, 1) for o in outcomes
    ]
    benchmark.extra_info["echo_p95_ms"] = [round(o.echo_p95_ms, 1) for o in outcomes]
    assert check_shape(outcomes) == []
    # Bulk is tolerant (cumulative channel info), echo pays the price.
    assert outcomes[-1].bulk_throughput_kB_per_sec > outcomes[0].bulk_throughput_kB_per_sec * 0.7
    assert outcomes[-1].echo_p95_ms > outcomes[0].echo_p95_ms * 2
