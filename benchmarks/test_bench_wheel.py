"""Micro-benchmarks for the PR-10 hot structures (DESIGN.md §16):
scheduler churn (wheel vs heap) and the redirector fast table.

Unlike the macro-benchmark these time a single structure in isolation,
so the numbers are only comparable *within* one run — CI uses them to
spot order-of-magnitude cliffs, not absolute speed.  The honest finding
they document: CPython's C ``heapq`` wins raw schedule/cancel churn at
every queue depth we measured, while the wheel holds parity on the
macro-benchmark — see DESIGN.md §16 for why the wheel is still the
default.
"""

import pytest

from repro.netsim.simulator import HeapSimulator, WheelSimulator


def _churn(sim_cls, n_pending: int = 2000, ops: int = 20_000) -> int:
    """Representative scheduler churn: a standing population of timers
    being continuously fired, re-armed, and occasionally cancelled at
    the engine's short-horizon mix (retransmit/heartbeat/serialization
    delays)."""
    sim = sim_cls()
    fired = 0

    def tick():
        nonlocal fired
        fired += 1

    # Standing population.
    handles = [sim.schedule(0.001 + (i % 97) * 0.0005, tick) for i in range(n_pending)]
    for i in range(ops):
        slot = i % n_pending
        handles[slot].cancel()
        handles[slot] = sim.schedule(0.002 + (i % 89) * 0.0004, tick)
        if i % 7 == 0:
            sim.post(0.0015, tick)
    sim.run_until_idle(max_events=n_pending + ops)
    return fired


@pytest.mark.parametrize("sim_cls", [WheelSimulator, HeapSimulator],
                         ids=["wheel", "heap"])
def test_bench_scheduler_churn(benchmark, sim_cls):
    fired = benchmark.pedantic(
        _churn, args=(sim_cls,), rounds=3, iterations=1
    )
    assert fired > 0
    benchmark.extra_info["fired"] = fired


def test_bench_scheduler_churn_differential():
    """The churn workload fires the identical event count either way —
    cheap insurance that the micro-benchmark itself is differential."""
    assert _churn(WheelSimulator, 500, 4000) == _churn(HeapSimulator, 500, 4000)


def _fast_table_lookups(n_services: int = 256, lookups: int = 200_000) -> int:
    """The redirector's per-packet path: two fast-table probes per
    packet ((src, sport) then (dst, dport)) against plain-int keys."""
    from repro.hydranet.redirector import _RedirectorTable, RedirectionEntry, ServiceKey
    from repro.netsim.addressing import IPAddress

    table = _RedirectorTable()
    for i in range(n_services):
        key = ServiceKey(IPAddress(0x0A000000 + i), 5000 + i)
        table[key] = RedirectionEntry(
            key=key, replicas=[IPAddress(0x0A010000 + i)]
        )
    fast = table.fast
    hits = 0
    for i in range(lookups):
        if fast.get((0x0A000000 + (i % n_services), 5000 + (i % n_services))):
            hits += 1
        if fast.get((0x0B000000 + (i % n_services), 5000)) is None:
            hits += 1  # miss path is just as hot (non-service traffic)
    return hits


def test_bench_redirector_fast_table(benchmark):
    hits = benchmark.pedantic(_fast_table_lookups, rounds=3, iterations=1)
    assert hits == 400_000
