"""D2: service-scaling benefit (latency / origin load / long-haul
traffic with and without a nearby replica)."""

import pytest

from repro.experiments.scaling_benefit import check_shape, run_scaling

from .conftest import bench_once


def test_bench_scaling_benefit(benchmark):
    def run_both():
        baseline = run_scaling(with_replica=False, requests_per_client=6)
        scaled = run_scaling(with_replica=True, requests_per_client=6)
        return baseline, scaled

    baseline, scaled = bench_once(benchmark, run_both)
    benchmark.extra_info["mean_latency_ms"] = {
        "origin_only": round(baseline.mean_latency_ms, 1),
        "with_replica": round(scaled.mean_latency_ms, 1),
    }
    benchmark.extra_info["origin_packets"] = {
        "origin_only": baseline.origin_packets,
        "with_replica": scaled.origin_packets,
    }
    assert check_shape(baseline, scaled) == []
    assert scaled.mean_latency_ms < baseline.mean_latency_ms / 2
