"""A4: fragmentation — the MTU dip and tunnelling-induced fragments."""

import pytest

from repro.experiments.fragmentation import (
    UDP_FRAG_BOUNDARY,
    check_shape,
    run_mtu_sweep,
    run_tunnel_fragmentation,
)

from .conftest import bench_once

SIZES = (1024, 1472, 1500, 2048)


def test_bench_mtu_sweep(benchmark):
    outcomes = bench_once(benchmark, run_mtu_sweep, sizes=SIZES, nbuf=128)
    benchmark.extra_info["datagram_sizes"] = list(SIZES)
    benchmark.extra_info["throughput_kB_per_s"] = [
        round(o.throughput_kB_per_sec, 1) for o in outcomes
    ]
    by_size = {int(o.value): o for o in outcomes}
    assert not by_size[1472].fragments_created
    assert by_size[1500].fragments_created
    # The classic dip right past the MTU boundary.
    assert by_size[1500].throughput_kB_per_sec < by_size[1472].throughput_kB_per_sec


def test_bench_tunnel_fragmentation(benchmark):
    outcomes = bench_once(benchmark, run_tunnel_fragmentation, nbuf=128)
    benchmark.extra_info["configs"] = [o.label for o in outcomes]
    benchmark.extra_info["throughput_kB_per_s"] = [
        round(o.throughput_kB_per_sec, 1) for o in outcomes
    ]
    fragging, fitting = outcomes
    assert fragging.fragments_created and not fitting.fragments_created
