"""A7: failure-detector comparison (retransmission estimator vs
heartbeats)."""

import pytest

from repro.experiments.detector_comparison import check_shape, run_comparison

from .conftest import bench_once


def test_bench_detector_comparison(benchmark):
    outcomes = bench_once(benchmark, run_comparison, heartbeat_period=0.5)
    for o in outcomes:
        benchmark.extra_info[o.detector] = {
            "active_s": round(o.active_latency, 2)
            if o.active_latency != float("inf")
            else "never",
            "idle_s": round(o.idle_latency, 2)
            if o.idle_latency != float("inf")
            else "never",
            "idle_msgs_per_s": round(o.idle_messages_per_sec, 1),
        }
    assert check_shape(outcomes) == []
