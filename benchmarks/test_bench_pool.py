"""Parallel-execution-layer benchmarks (DESIGN.md §12, BENCH_PR5.json).

Two contracts from the scenario pool, mirroring the perf-smoke split:

* determinism is absolute — the scaling sweep must produce an identical
  batch fingerprint at every jobs level, and pooled interleaved
  repetitions of the engine macro-benchmark must agree on every
  deterministic field;
* throughput is hardware-dependent — parallel efficiency only gates
  when the host actually has the cores (``REPRO_BENCH_JOBS`` overrides
  the worker count used for the pooled medians).
"""

import os

from repro.metrics.perf import (
    check_scaling,
    run_pooled_engine_medians,
    run_scaling_benchmark,
)

from .conftest import bench_once


def _bench_jobs() -> int:
    env = os.environ.get("REPRO_BENCH_JOBS")
    return int(env) if env else min(2, os.cpu_count() or 1)


def test_bench_scaling_sweep(benchmark):
    result = bench_once(
        benchmark,
        run_scaling_benchmark,
        jobs_levels=(1, 2),
        n_scenarios=8,
    )
    benchmark.extra_info.update(result.to_dict())
    problems = check_scaling(result, min_efficiency=0.5, at_jobs=2)
    assert problems == [], "\n".join(problems)
    fingerprints = {p.batch_fingerprint for p in result.points}
    assert len(fingerprints) == 1


def test_bench_pooled_engine_medians(benchmark):
    medians = bench_once(
        benchmark,
        run_pooled_engine_medians,
        runs=3,
        jobs=_bench_jobs(),
        nbuf=64,
        buflen=1024,
    )
    benchmark.extra_info.update(medians)
    assert medians["deterministic"]["completed"] is True
    assert medians["deterministic"]["bytes_sent"] == 64 * 1024
    assert medians["median_events_per_sec"] > 0
